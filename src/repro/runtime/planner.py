"""Plan building: topological schedule, liveness analysis, arena binding.

:func:`compile_plan` turns a :class:`~repro.runtime.graph.GraphCapture` into
an :class:`ExecutionPlan`:

* the **forward schedule** is the capture order (already topological — ops
  were recorded as they executed);
* the **backward schedule** replicates the eager engine's stack-DFS
  topological order exactly, so per-slot gradient accumulation happens in
  the identical consumer order and grouping — replayed gradients are bitwise
  equal to eager ones (surrogate gradients are discontinuous, so even
  ulp-level accumulation drift would compound across optimizer steps);
* **liveness analysis** computes, per slot, the last point that reads it.
  Forward-only plans share arena buffers between non-overlapping live ranges
  — and elementwise ops whose input dies at the very node may write the
  result *in place* into the input's buffer (in-place-safe slot aliasing) —
  while training plans keep forward values alive exactly until their
  producer's backward consumes them.  Dead values are dropped eagerly during
  replay, so the steady-state working set matches the eager engine while the
  arena keeps the steady-state allocation count at ~0.
"""

from __future__ import annotations

import time

import numpy as np

from typing import Dict, List, Optional, Tuple

from repro.autograd.tensor import _unbroadcast
from repro.resilience import faults
from repro.resilience.errors import NumericFault
from repro.runtime.arena import BufferArena
from repro.runtime.graph import INTER, LEAF, CaptureError, GraphCapture
from repro.runtime.ops import get_op
from repro.runtime.optimizer import optimize_capture

__all__ = ["ExecutionPlan", "PlanSignatureError", "compile_plan"]

_INFINITY = float("inf")


class PlanSignatureError(ValueError):
    """A replay input does not match the captured shape/dtype signature."""


class ExecutionPlan:
    """A replayable forward(+backward) schedule over a fixed-slot graph.

    Built by :func:`compile_plan`; replay with :meth:`replay`.  The plan owns
    its arena buffers until :meth:`release` returns them to the pool.
    """

    def __init__(self, capture: GraphCapture, arena: BufferArena,
                 profile: bool = False, backend: str = "numpy",
                 guard_numerics: bool = False):
        from repro.runtime.backends import resolve_backend

        self._arena = arena
        # Kernel backend: the requested name degrades gracefully (an
        # unavailable backend resolves to the reference), and individual
        # nodes the backend declines fall back per node below.
        self.backend_request = backend
        self._backend = resolve_backend(backend)
        self.backend = self._backend.name
        self.slots = capture.slots
        self.nodes = capture.nodes
        self.input_ids: Dict[str, int] = dict(capture.input_names)
        self.output_ids: List[Tuple[str, int]] = list(capture.outputs)
        self.loss_slot = capture.loss_slot
        self.optimizer_report = getattr(capture, "optimizer_report", None)
        # Level schedule produced by the optimizer's parallel pass: nodes are
        # sorted by dependency level, steps within one level are independent.
        self._levels: Optional[List[int]] = getattr(capture, "parallel_levels", None)
        self._workers = int(getattr(capture, "parallel_workers", 0) or 0)
        self._pool = None
        self._profile = bool(profile)
        # Optimized plans adopt C-contiguous first-write gradient views by
        # reference: the layout matches the contiguous copy bit-for-bit, so
        # downstream pairwise reductions cannot drift — only O0 keeps the
        # (PR-3 exact) unconditional copy.
        self._adopt_contiguous_views = (
            self.optimizer_report is not None
            and getattr(self.optimizer_report, "level", "O0") != "O0"
        )
        self.kernel_seconds: Dict[str, float] = {}
        self.kernel_calls: Dict[str, int] = {}

        count = len(self.slots)
        self._vals: List[Optional[np.ndarray]] = [slot.array for slot in self.slots]
        self._gvals: List[Optional[np.ndarray]] = [None] * count
        self._gbuf: Dict[int, np.ndarray] = {}
        self._gout: Dict[int, np.ndarray] = {}
        self._leaf_slots = [(slot.index, slot.tensor) for slot in self.slots
                            if slot.kind == LEAF]
        self._buffers: List[np.ndarray] = []
        self._keep = {index for _, index in self.output_ids}
        if self.loss_slot is not None:
            self._keep.add(self.loss_slot)

        self._needs = self._compute_needs_grad()
        self.has_backward = (
            self.loss_slot is not None and self._needs[self.loss_slot]
        )
        self._grad_targets: List[Tuple[int, object]] = []
        self._bwd_nodes = self._build_backward_schedule() if self.has_backward else []
        self._roots = self._alias_roots()
        self._last_use = self._compute_last_use()
        self._slot_buffer = self._bind_buffers()
        self._fwd_drops = self._build_forward_drops()
        self._post_drops = [
            slot.index for slot in self.slots
            if slot.kind == INTER and slot.index not in self._keep
            and slot.index not in self._slot_buffer
        ]
        self._compile_native_kernels()
        self._fwd_steps = [self._make_forward_step(position, node)
                           for position, node in enumerate(self.nodes)]
        self._bwd_steps = [self._make_backward_step(node) for node in self._bwd_nodes]
        self._fwd_labels = [
            self._decorated_label(node, self._native.get(position))
            for position, node in enumerate(self.nodes)
        ]
        self._bwd_labels = [
            "bwd:" + self._decorated_label(node, self._native_by_id.get(id(node)))
            for node in self._bwd_nodes
        ]
        self._level_groups = self._build_level_groups()
        if self.has_backward:
            loss = self.slots[self.loss_slot]
            self._seed = np.ones(loss.shape, dtype=loss.dtype)
        self._sealed = False
        self.replay_count = 0
        #: Numeric guard policy: check every node's forward output for
        #: non-finite values and raise :class:`NumericFault` (see
        #: :meth:`_run_forward_guarded`).  Quarantined kernel labels land in
        #: :attr:`quarantined` and move from native to fallback accounting.
        self.guard_numerics = bool(guard_numerics)
        self.quarantined: List[str] = []
        self._poison_target: Optional[int] = None
        self._poison_value = float("nan")

    @staticmethod
    def _node_label(node) -> str:
        if node.op in ("fn", "fn_cached"):
            return f"{node.op}:{node.attrs['cls'].__name__}"
        return node.op

    def _decorated_label(self, node, native) -> str:
        """Profiler label with the executing backend appended.

        Native-compiled nodes read ``op@<backend>``; nodes the selected
        native backend was *eligible* for but declined (unsupported program
        variant, failed plan-time verification) read ``op@fallback`` — the
        rest replay the reference kernels and keep their bare label.
        """
        label = self._node_label(node)
        if native is not None:
            return f"{label}@{native.backend}"
        if not self._backend.is_reference and self._backend.eligible(node):
            return f"{label}@fallback"
        return label

    def _compile_native_kernels(self) -> None:
        """Offer every node to the selected backend; keep what verifies.

        Runs before the capture is sealed, so backends can specialize and
        verify against the recorded slot arrays.  Declined nodes stay on
        their registry kernels (per-node fallback); the plan counts both
        populations so speedups are attributable.
        """
        self._native: Dict[int, object] = {}
        self._native_by_id: Dict[int, object] = {}
        self.native_nodes = 0
        self.fallback_nodes = 0
        backend = self._backend
        if backend.is_reference:
            return
        bwd_ids = {id(node) for node in self._bwd_nodes}
        for position, node in enumerate(self.nodes):
            if not backend.eligible(node):
                continue
            needs = tuple(self._needs[i] for i in node.inputs)
            kernel = backend.compile_node(node, self.slots, needs,
                                          id(node) in bwd_ids)
            if kernel is None:
                self.fallback_nodes += 1
                continue
            self.native_nodes += 1
            self._native[position] = kernel
            self._native_by_id[id(node)] = kernel

    def _parallel(self) -> bool:
        return (self._workers > 0 and self._levels is not None
                and not self.has_backward)

    def _build_level_groups(self) -> Optional[List[Tuple[int, int, int]]]:
        """Contiguous ``(level, start, stop)`` runs of the level-sorted schedule."""
        if not self._parallel():
            return None
        groups: List[Tuple[int, int, int]] = []
        start = 0
        for position in range(1, len(self.nodes) + 1):
            if (position == len(self.nodes)
                    or self._levels[position] != self._levels[start]):
                groups.append((self._levels[start], start, position))
                start = position
        return groups

    # -- analysis ------------------------------------------------------------

    def _compute_needs_grad(self) -> List[bool]:
        needs = [False] * len(self.slots)
        for slot in self.slots:
            if slot.kind == LEAF and slot.tensor is not None and slot.tensor.requires_grad:
                needs[slot.index] = True
        for node in self.nodes:
            if node.out is None or needs[node.out]:
                continue
            if get_op(node.op).differentiable and any(needs[i] for i in node.inputs):
                needs[node.out] = True
        return needs

    def _build_backward_schedule(self):
        """Backward node order replicating :meth:`Tensor.backward` exactly.

        Same stack-based DFS (inputs filtered by needs-grad, same push order,
        same visited checks), hence bitwise-identical gradient accumulation.
        """
        needs = self._needs
        producer: Dict[int, object] = {}
        for node in self.nodes:
            if node.out is not None and get_op(node.op).differentiable:
                producer[node.out] = node

        topo: List[int] = []
        visited = set()
        stack: List[Tuple[int, bool]] = [(self.loss_slot, False)]
        while stack:
            index, processed = stack.pop()
            if processed:
                topo.append(index)
                continue
            if index in visited:
                continue
            visited.add(index)
            stack.append((index, True))
            node = producer.get(index)
            if node is None:
                continue
            for parent in node.inputs:
                if needs[parent] and parent not in visited:
                    stack.append((parent, False))

        schedule = []
        reachable = set()
        for index in reversed(topo):
            node = producer.get(index)
            if node is None:
                continue
            schedule.append(node)
            for parent in node.inputs:
                if needs[parent]:
                    reachable.add(parent)
        self._grad_targets = [
            (slot.index, slot.tensor) for slot in self.slots
            if slot.kind == LEAF and slot.index in reachable
        ]
        return schedule

    def _alias_roots(self) -> List[int]:
        roots = list(range(len(self.slots)))
        for node in self.nodes:
            if node.out is not None and get_op(node.op).alias:
                roots[node.out] = roots[node.inputs[0]]
        return roots

    def _compute_last_use(self) -> Dict[int, float]:
        """Last forward position reading each slot directly (outputs: forever)."""
        last_use: Dict[int, float] = {}
        for position, node in enumerate(self.nodes):
            for index in node.inputs:
                last_use[index] = position
        for index in self._keep:
            last_use[index] = _INFINITY
        return last_use

    def _bind_buffers(self) -> Dict[int, np.ndarray]:
        """Assign arena buffers to out-capable op outputs.

        Forward-only plans run a linear scan over live ranges so buffers are
        shared between non-overlapping intermediates; training plans keep
        every forward value alive for the backward pass, so each managed slot
        gets a dedicated (but step-persistent) buffer.
        """
        managed: Dict[int, np.ndarray] = {}
        roots = self._roots

        candidates = []
        for position, node in enumerate(self.nodes):
            opdef = get_op(node.op)
            out = node.out
            if (out is None or opdef.alias or not opdef.out_capable
                    or self.slots[out].kind != INTER or roots[out] != out):
                continue
            candidates.append((position, node, opdef))
        if not candidates:
            return managed

        if self.has_backward:
            for _, node, _ in candidates:
                slot = self.slots[node.out]
                buffer = self._arena.acquire(slot.shape, slot.dtype)
                managed[node.out] = buffer
                self._buffers.append(buffer)
            return managed

        # Forward-only: alias-folded live ranges, linear-scan buffer sharing.
        # Parallel plans measure positions in dependency *levels*: a buffer
        # is only reusable once its last reader's level has fully completed,
        # because steps within one level run concurrently.
        levels = self._levels if self._parallel() else None

        def _pos(position: float) -> float:
            if levels is None or position == _INFINITY:
                return position
            return levels[int(position)]

        root_last: Dict[int, float] = {}
        for index, use in self._last_use.items():
            root = roots[index]
            root_last[root] = max(root_last.get(root, -1), _pos(use))

        free: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        active: List[Tuple[float, int]] = []  # (last_use, slot) with a bound buffer

        def _release_until(limit: float) -> None:
            keep = []
            for use, slot_index in active:
                if use <= limit:
                    buffer = managed[slot_index]
                    key = (buffer.shape, buffer.dtype.str)
                    free.setdefault(key, []).append(buffer)
                else:
                    keep.append((use, slot_index))
            active[:] = keep

        for position, node, opdef in candidates:
            _release_until(_pos(position) - 1)
            if opdef.inplace_safe and levels is None:
                # An input that dies at this very node may donate its buffer:
                # elementwise kernels tolerate out aliasing a same-shape input.
                # (Disabled under the parallel schedule — a same-level sibling
                # may still be reading the donor.)
                _release_until(position)
            slot = self.slots[node.out]
            key = (slot.shape, slot.dtype.str)
            bucket = free.get(key)
            if bucket:
                buffer = bucket.pop()
            else:
                buffer = self._arena.acquire(slot.shape, slot.dtype)
                self._buffers.append(buffer)
            managed[node.out] = buffer
            active.append((root_last.get(node.out, -1), node.out))
        return managed

    def _build_forward_drops(self) -> Dict[int, List[int]]:
        """Per-node lists of value entries to drop right after that node runs.

        Only forward-only plans drop during the forward sweep (training plans
        need every value for backward); dead entries release their arrays as
        soon as all aliases are gone, keeping the replay working set at the
        eager engine's level instead of pinning a full step of intermediates.
        """
        drops: Dict[int, List[int]] = {}
        self._level_drops: Dict[int, List[int]] = {}
        if self.has_backward:
            return drops
        parallel = self._parallel()
        for slot in self.slots:
            if (slot.kind != INTER or slot.index in self._keep
                    or slot.index in self._slot_buffer):
                continue
            use = self._last_use.get(slot.index)
            if use is None:
                producer = slot.producer
                if producer is not None:
                    if parallel:
                        self._level_drops.setdefault(self._levels[producer], []) \
                            .append(slot.index)
                    else:
                        drops.setdefault(producer, []).append(slot.index)
            elif use != _INFINITY:
                if parallel:
                    # Concurrent same-level readers: drop only after the whole
                    # level of the last reader has completed.
                    self._level_drops.setdefault(self._levels[int(use)], []) \
                        .append(slot.index)
                else:
                    drops.setdefault(int(use), []).append(slot.index)
        return drops

    # -- step construction -----------------------------------------------------

    def _make_forward_step(self, position: int, node):
        opdef = get_op(node.op)
        vals = self._vals
        native = self._native.get(position)
        if native is not None:
            forward = native.forward
            if not self.has_backward and native.forward_inference is not None:
                forward = native.forward_inference
        else:
            forward = opdef.forward
            if not self.has_backward and opdef.forward_inference is not None:
                # No backward will ever run: use the lean kernel that skips
                # saved-state materialisation (columns, argmax maps, histories).
                forward = opdef.forward_inference
        attrs = node.attrs
        inputs = node.inputs
        out = node.out
        buffer = self._slot_buffer.get(out) if out is not None else None
        drops = self._fwd_drops.get(position)

        if out is None:
            def step():
                forward([vals[i] for i in inputs], attrs)
                if drops is not None:
                    for index in drops:
                        vals[index] = None
            return step

        if drops is None:
            def step():
                result = forward([vals[i] for i in inputs], attrs, buffer)
                if type(result) is tuple:
                    result, node.rt_saved = result
                vals[out] = result
            return step

        def step():
            result = forward([vals[i] for i in inputs], attrs, buffer)
            if type(result) is tuple:
                result, node.rt_saved = result
            vals[out] = result
            for index in drops:
                vals[index] = None
        return step

    def _make_backward_step(self, node):
        opdef = get_op(node.op)
        vals, gvals = self._vals, self._gvals
        native = self._native_by_id.get(id(node))
        if native is not None and native.backward is not None:
            backward = native.backward
        else:
            backward = opdef.backward
        if backward is None:  # pragma: no cover - differentiable ops all have kernels
            raise CaptureError(f"op '{node.op}' is differentiable but has no backward kernel")
        attrs = node.attrs
        inputs = node.inputs
        out = node.out
        needs = tuple(self._needs[i] for i in inputs)
        accumulate = self._accumulate_grad
        # After this backward runs, neither the forward value nor the gradient
        # of `out` has any remaining reader (consumers' backwards all ran
        # earlier — reverse-topological order), so both entries are dropped.
        drop_val = out not in self._keep and out not in self._slot_buffer

        def step():
            grad = gvals[out]
            if grad is None:
                return
            grads = backward(grad, [vals[i] for i in inputs], vals[out],
                             node.rt_saved, attrs, needs)
            for position, index in enumerate(inputs):
                grad_i = grads[position]
                if grad_i is None or not needs[position]:
                    continue
                accumulate(index, grad_i)
            gvals[out] = None
            if drop_val:
                vals[out] = None
        return step

    def _grad_buffer(self, index: int, slot) -> np.ndarray:
        buffer = self._gbuf.get(index)
        if buffer is None:
            buffer = self._arena.acquire(slot.shape, slot.dtype)
            self._gbuf[index] = buffer
            self._buffers.append(buffer)
        return buffer

    def _accumulate_grad(self, index: int, grad: np.ndarray) -> None:
        slot = self.slots[index]
        grad = _unbroadcast(np.asarray(grad, dtype=slot.dtype), slot.shape)
        current = self._gvals[index]
        if current is None:
            if (grad.base is not None and self._adopt_contiguous_views
                    and grad.flags["C_CONTIGUOUS"]):
                # A contiguous view has the exact layout its copy would have;
                # the base array stays unwritten until the next replay, so
                # adopting it by reference is value- and bit-safe.
                self._gvals[index] = grad
                return
            if grad.base is not None:
                # Mirror the eager engine: first-write views are materialised
                # to a contiguous copy (here into a step-persistent buffer).
                # Keeping the view would be value-equal but layout-different,
                # and NumPy's pairwise reductions over a different memory
                # layout drift by an ulp — enough to flip a surrogate
                # gradient a few optimizer steps later.
                buffer = self._grad_buffer(index, slot)
                np.copyto(buffer, grad)
                grad = buffer
            self._gvals[index] = grad
            return
        buffer = self._grad_buffer(index, slot)
        if current is buffer:
            np.add(buffer, grad, out=buffer)
        else:
            np.add(current, grad, out=buffer)
            self._gvals[index] = buffer

    # -- execution ---------------------------------------------------------------

    def bind_inputs(self, inputs: Dict[str, np.ndarray]) -> None:
        vals = self._vals
        for name, array in inputs.items():
            index = self.input_ids.get(name)
            if index is None:
                raise PlanSignatureError(f"plan has no input named '{name}'")
            slot = self.slots[index]
            array = np.asarray(array)
            if array.shape != slot.shape or array.dtype != slot.dtype:
                raise PlanSignatureError(
                    f"input '{name}' expects {slot.shape}/{slot.dtype}, "
                    f"got {array.shape}/{array.dtype} — re-capture required"
                )
            vals[index] = array

    def replay(self, inputs: Dict[str, np.ndarray], grads: Optional[bool] = None):
        """Re-execute the plan on fresh input arrays; returns the output arrays.

        Parameter slots are re-read from their live tensors, so optimizer
        updates between replays are picked up automatically.  With
        ``grads=True`` (default when a loss was marked) the planned backward
        runs as well and leaf gradients are accumulated into ``tensor.grad``.
        Returned arrays live in plan-owned storage valid until the next replay.
        """
        if not self._sealed:
            self.seal()
        injector = faults.get_injector()
        if injector is not None and self._poison_target is None:
            action = injector.maybe("runtime.nan")
            if action is not None:
                self._arm_poison(action)
        self.bind_inputs(inputs)
        vals = self._vals
        for index, tensor in self._leaf_slots:
            vals[index] = tensor.data
        self._run_forward()
        if grads is None:
            grads = self.has_backward
        if grads:
            self._run_backward()
            self._drop_dead_values()
        self.replay_count += 1
        return [vals[index] for _, index in self.output_ids]

    def replay_profiled(self, inputs: Dict[str, np.ndarray],
                        grads: Optional[bool] = None):
        """One replay with per-kernel attribution, regardless of ``profile=``.

        Runs the (serial) profiled executor for this call only and returns
        ``(outputs, [(label, seconds, calls), ...])`` where the timing rows
        are the *deltas* this replay added to the cumulative profile — the
        feed for sampled per-kernel trace spans (:mod:`repro.obs`).  Labels
        follow schedule order for kernels first seen here; repeated labels
        (e.g. per-timestep LIF steps sharing one kernel) merge with their
        call count.
        """
        before_s = dict(self.kernel_seconds)
        before_c = dict(self.kernel_calls)
        was_profiling = self._profile
        self._profile = True
        try:
            outputs = self.replay(inputs, grads=grads)
        finally:
            self._profile = was_profiling
        timings = []
        for label, seconds in self.kernel_seconds.items():
            calls = self.kernel_calls.get(label, 0) - before_c.get(label, 0)
            if calls > 0:
                timings.append((label, seconds - before_s.get(label, 0.0), calls))
        if not was_profiling:
            # profile=False plans should not keep accumulating state from
            # sampled replays (runtime_stats() would report a misleading
            # partial profile); restore the cumulative dicts.
            self.kernel_seconds.clear()
            self.kernel_seconds.update(before_s)
            self.kernel_calls.clear()
            self.kernel_calls.update(before_c)
        return outputs, timings

    def _run_forward(self) -> None:
        if self.guard_numerics or self._poison_target is not None:
            # Guarded (and fault-poisoned) replays run the serial checked
            # path; guards trade the level-parallel overlap for detection.
            self._run_forward_guarded()
            return
        if self._level_groups is not None:
            if self._profile:
                # Per-kernel wall-clock attribution needs serial execution:
                # run the level schedule sequentially (with its level-barrier
                # drops) instead of silently dropping the profile.
                self._run_profiled(self._fwd_steps, self._fwd_labels,
                                   level_groups=self._level_groups)
            else:
                self._run_forward_parallel()
        elif self._profile:
            self._run_profiled(self._fwd_steps, self._fwd_labels)
        else:
            for step in self._fwd_steps:
                step()

    def _run_forward_parallel(self) -> None:
        """Execute the level schedule; independent same-level steps overlap.

        NumPy's BLAS kernels release the GIL, so the pool overlaps the heavy
        GEMMs of independent branches (residual paths, TT sub-convolutions).
        Buffer binding and value drops are level-aware (see
        :meth:`_bind_buffers` / :meth:`_build_forward_drops`), so concurrent
        steps never share scratch storage.
        """
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=self._workers)
        steps = self._fwd_steps
        vals = self._vals
        for level, start, stop in self._level_groups:
            if stop - start == 1:
                steps[start]()
            else:
                futures = [self._pool.submit(steps[index])
                           for index in range(start, stop)]
                for future in futures:
                    future.result()
            drops = self._level_drops.get(level)
            if drops is not None:
                for index in drops:
                    vals[index] = None

    def _run_profiled(self, steps, labels, level_groups=None) -> None:
        seconds = self.kernel_seconds
        calls = self.kernel_calls
        for step, label in zip(steps, labels):
            started = time.perf_counter()
            step()
            elapsed = time.perf_counter() - started
            seconds[label] = seconds.get(label, 0.0) + elapsed
            calls[label] = calls.get(label, 0) + 1
        if level_groups is not None:
            # Serial stand-in for the parallel runner: apply its
            # level-barrier value drops so liveness behaves identically.
            vals = self._vals
            for level, _, _ in level_groups:
                drops = self._level_drops.get(level)
                if drops is not None:
                    for index in drops:
                        vals[index] = None

    # -- numeric guards / fault quarantine ----------------------------------------

    def _arm_poison(self, action: Dict[str, object]) -> None:
        """Arm one injected non-finite emission (``runtime.nan`` fault site).

        The poisoned node is chosen deterministically: an explicit
        ``position``, else the first node whose label contains ``label``,
        else the first native-compiled node (the scenario the quarantine
        machinery exists for), else the first float-producing node.
        """
        position = action.get("position")
        if position is None:
            want = action.get("label")
            candidates: List[int] = []
            if want is not None:
                candidates = [p for p, label in enumerate(self._fwd_labels)
                              if str(want) in label
                              and self.nodes[p].out is not None]
            if not candidates:
                candidates = sorted(self._native)
            if not candidates:
                candidates = [p for p, node in enumerate(self.nodes)
                              if node.out is not None]
            if not candidates:  # pragma: no cover - plans always have nodes
                return
            position = candidates[0]
        self._poison_target = int(position)
        self._poison_value = float(action.get("value", "nan"))

    def _run_forward_guarded(self) -> None:
        """Serial forward with per-node non-finite detection.

        Raises a typed :class:`NumericFault` naming the first offending
        node; the front-ends (:mod:`repro.runtime.replay`) use
        ``fault.native`` to decide between quarantining the kernel (native
        — retry on the reference path) and propagating (reference — a real
        numerical problem in model or data).  Injected poison is written
        into the target node's output *after* it runs, so detection
        exercises the same path a genuinely misbehaving kernel would.
        """
        vals = self._vals
        nodes = self.nodes
        check = self.guard_numerics
        for position, step in enumerate(self._fwd_steps):
            step()
            out = nodes[position].out
            if out is None:
                continue
            if self._poison_target == position:
                self._poison_target = None
                value = vals[out]
                if (value is not None and value.size
                        and np.issubdtype(value.dtype, np.floating)):
                    value.flat[0] = self._poison_value
            if not check:
                continue
            value = vals[out]
            if (value is not None
                    and np.issubdtype(value.dtype, np.floating)
                    and not np.isfinite(value).all()):
                raise NumericFault(self._fwd_labels[position], position,
                                   position in self._native)
        if self._level_groups is not None:
            # Serial stand-in for the parallel runner (see _run_profiled):
            # apply its level-barrier drops so liveness behaves identically.
            for level, _, _ in self._level_groups:
                drops = self._level_drops.get(level)
                if drops is not None:
                    for index in drops:
                        vals[index] = None

    def quarantine_node(self, position: int) -> bool:
        """Demote one native-compiled node to its reference kernel, in place.

        Returns ``False`` when the node has no native kernel (nothing to
        quarantine).  The swap rebuilds just that node's forward step (and
        its backward step, when scheduled) and moves the node from native to
        fallback accounting, so ``runtime_stats()`` / the backend gauges
        show exactly which kernel was benched — extending the per-node
        fallback bookkeeping native backends already use at plan time.
        """
        kernel = self._native.pop(position, None)
        if kernel is None:
            return False
        node = self.nodes[position]
        self._native_by_id.pop(id(node), None)
        self.native_nodes -= 1
        self.fallback_nodes += 1
        self.quarantined.append(self._fwd_labels[position])
        self._fwd_steps[position] = self._make_forward_step(position, node)
        self._fwd_labels[position] = self._decorated_label(node, None)
        for index, bwd_node in enumerate(self._bwd_nodes):
            if bwd_node is node:
                self._bwd_steps[index] = self._make_backward_step(bwd_node)
                self._bwd_labels[index] = (
                    "bwd:" + self._decorated_label(bwd_node, None))
        return True

    def backward_from_capture(self) -> None:
        """Run the planned backward on the values recorded during capture.

        Used for the very first step: the forward already ran eagerly while
        being captured, so only the backward sweep (and the leaf-gradient
        write-back) is outstanding.
        """
        if not self.has_backward:
            raise CaptureError("plan has no backward (no loss was marked)")
        self._run_backward()

    def _run_backward(self) -> None:
        gvals = self._gvals
        gvals[self.loss_slot] = self._seed
        if self._profile:
            self._run_profiled(self._bwd_steps, self._bwd_labels)
        else:
            for step in self._bwd_steps:
                step()
        for index, tensor in self._grad_targets:
            grad = gvals[index]
            gvals[index] = None
            if grad is None:
                continue
            if tensor.grad is None:
                # Copy into a dedicated handout buffer: `grad` may alias a
                # plan accumulation buffer that the NEXT replay overwrites in
                # place, which would silently destroy cross-step gradient
                # accumulation (callers that skip zero_grad between steps).
                slot = self.slots[index]
                handout = self._gout.get(index)
                if handout is None:
                    handout = self._arena.acquire(slot.shape, slot.dtype)
                    self._gout[index] = handout
                    self._buffers.append(handout)
                np.copyto(handout, grad)
                tensor.grad = handout
                # Handout stays plan-owned: eager accumulation on top must
                # reallocate rather than mutate it in place.
                tensor._grad_owned = False
            else:
                tensor.grad = tensor.grad + grad
                tensor._grad_owned = True

    def _drop_dead_values(self) -> None:
        """Drop every transient value/gradient reference at end of step.

        Keeps the between-step working set at parity with eager execution
        (which frees its whole tape when the step's tensors go out of scope):
        only arena buffers, plan outputs and the loss survive.
        """
        vals, gvals = self._vals, self._gvals
        for index in self._post_drops:
            vals[index] = None
        for index in range(len(gvals)):
            gvals[index] = None

    def seal(self) -> None:
        """Release capture-time transients (arrays, saved contexts).

        Called automatically before the first replay; after sealing, the plan
        no longer pins the captured step's intermediate arrays — only the
        arena buffers, constants and live leaf references remain.
        """
        if self._sealed:
            return
        self._sealed = True
        for slot in self.slots:
            if slot.kind == INTER:
                slot.array = None
        for node in self.nodes:
            node.saved = None
            node.rt_saved = None
        for index in self._post_drops:
            self._vals[index] = None
        for index in self._keep:
            if self.slots[index].kind == INTER:
                self._vals[index] = None
        for index in range(len(self._gvals)):
            self._gvals[index] = None

    # -- bookkeeping ---------------------------------------------------------------

    def outputs(self) -> List[np.ndarray]:
        return [self._vals[index] for _, index in self.output_ids]

    def loss_value(self) -> float:
        if self.loss_slot is None:
            raise CaptureError("plan has no loss slot")
        return float(self._vals[self.loss_slot])

    def release(self) -> None:
        """Return all plan-owned buffers to the arena (call when invalidating)."""
        self._arena.release_all(self._buffers)
        self._buffers = []
        self._gbuf.clear()
        self._gout.clear()
        self._slot_buffer = {}
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def stats(self) -> Dict[str, float]:
        stats = {
            "nodes": float(len(self.nodes)),
            "backward_nodes": float(len(self._bwd_nodes)),
            "slots": float(len(self.slots)),
            "managed_slots": float(len(self._slot_buffer)),
            "forward_buffers": float(len({id(b) for b in self._slot_buffer.values()})),
            "grad_buffers": float(len(self._gbuf)),
            "replays": float(self.replay_count),
            "native_nodes": float(self.native_nodes),
            "fallback_nodes": float(self.fallback_nodes),
            "quarantined_nodes": float(len(self.quarantined)),
        }
        if self._levels is not None:
            stats["parallel_levels"] = float(self._levels[-1] + 1 if self._levels else 0)
            stats["parallel_workers"] = float(self._workers)
        return stats


def compile_plan(capture: GraphCapture, arena: Optional[BufferArena] = None,
                 optimize: str = "O0", parallel_workers: int = 0,
                 profile: bool = False, backend: str = "numpy",
                 guard_numerics: bool = False) -> ExecutionPlan:
    """Build an :class:`ExecutionPlan` from a finished capture.

    ``optimize`` selects the plan-time graph-optimizer level (``"O0"`` —
    none, ``"O1"`` — training-safe fusion/specialization, ``"O2"`` — adds
    inference-only constant folding and schedule optimization; see
    :mod:`repro.runtime.optimizer`).  ``parallel_workers > 0`` additionally
    schedules independent branches of no-grad ``O2`` plans onto an inter-op
    thread pool.  ``profile=True`` records per-kernel replay timings
    (``ExecutionPlan.kernel_seconds`` / ``kernel_calls``, rendered as a
    top-k table by :func:`repro.metrics.profiler.summarize_runtime`).

    ``backend`` selects the kernel backend (:mod:`repro.runtime.backends`):
    ``"numpy"`` (reference, default), ``"codegen"`` / ``"numba"`` (native
    per-node kernels with plan-time verification and per-node fallback), or
    ``"auto"`` (fastest available).  An unavailable backend silently
    degrades to the reference; ``plan.backend`` reports what actually runs.
    """
    optimize_capture(capture, optimize, parallel_workers=parallel_workers)
    return ExecutionPlan(capture, arena or BufferArena(), profile=profile,
                         backend=backend, guard_numerics=guard_numerics)
