"""``repro.runtime`` — capture/plan/replay execution engine.

Design note
-----------
The training loop and the serving path execute the *same* fused
forward/backward over and over with identical shapes, yet the eager engine
rebuilds the Python autograd tape — tensors, closures, topological sort —
and allocates fresh intermediates on every step.  This package eliminates
that steady-state overhead with a three-stage pipeline:

1. **Capture** (:mod:`~repro.runtime.graph`): one eager step runs with a
   per-thread op trace installed; every differentiable op reports an
   ``OpNode`` (op id, input/output slot refs, static attrs, saved state)
   while computing its usual result.  Placeholders mark replay-varying
   inputs; parameters become live leaf slots; everything else is a baked
   constant.
2. **Optimize** (:mod:`~repro.runtime.optimizer`): an ``optimize="O1"|"O2"``
   pass pipeline rewrites the captured graph before planning — workspace
   kernel specialization, elementwise-chain fusion, view collapse/CSE/DCE
   at O1 (value-exact, training-safe), plus eval-BN constant folding,
   Eq. 6 TT pre-contraction and schedule optimization on no-grad O2 plans.
3. **Plan** (:mod:`~repro.runtime.planner`): the recorded forward order is
   the topological schedule; the backward schedule is its reverse restricted
   to the loss→leaf gradient paths.  Liveness analysis assigns intermediates
   to a reusable **buffer arena** keyed by ``(shape, dtype)``
   (:mod:`~repro.runtime.arena`) with view-alias folding and in-place-safe
   slot aliasing for elementwise ops, so steady-state replays perform ~zero
   fresh arena allocations.
4. **Replay** (:mod:`~repro.runtime.replay`): ``CompiledTrainStep`` /
   ``CompiledForward`` re-execute the plan on new input arrays through the
   pure-kernel op registry (:mod:`~repro.runtime.ops`) — no tensors, no
   closures, no module dispatch — and re-capture automatically when the
   input signature (shape/dtype/train-mode/timesteps/step-mode) changes.

A **kernel backend registry** (:mod:`~repro.runtime.backends`) sits between
plan and replay: ``backend="codegen"`` / ``"numba"`` / ``"auto"`` swaps the
plan's fused ``ew_chain`` and LIF-recurrence nodes for plan-time-generated
native kernels (shape/dtype/constants baked in, verified against the NumPy
reference on the captured arrays, per-node fallback on decline), and a
``dtype`` policy selects float32/float64 end to end.

Entry points: ``BPTTTrainer(..., compile=True)``, ``Module.compile()`` and
``InferenceEngine(..., compile=True)``; see the README "Compiled runtime"
and "Backends" sections for measured speedups.
"""

from repro.runtime.arena import BufferArena
from repro.runtime.backends import (
    Backend,
    KernelRegistry,
    NativeKernel,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.runtime.graph import CaptureError, GraphCapture, OpNode, Region, Slot
from repro.runtime.ops import OPS, OpDef, get_op, register_op
from repro.runtime.optimizer import OPT_LEVELS, OptimizerReport, optimize_capture
from repro.runtime.planner import ExecutionPlan, PlanSignatureError, compile_plan
from repro.runtime.replay import CompiledForward, CompiledTrainStep
from repro.runtime.streaming import StreamingForward, TemporalState

__all__ = [
    "Backend",
    "BufferArena",
    "KernelRegistry",
    "NativeKernel",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "CaptureError",
    "GraphCapture",
    "OpNode",
    "Region",
    "Slot",
    "OPS",
    "OpDef",
    "get_op",
    "register_op",
    "OPT_LEVELS",
    "OptimizerReport",
    "optimize_capture",
    "ExecutionPlan",
    "PlanSignatureError",
    "compile_plan",
    "CompiledForward",
    "CompiledTrainStep",
    "StreamingForward",
    "TemporalState",
]
