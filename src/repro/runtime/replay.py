"""Compiled steps: capture once, replay on fresh inputs until the shape changes.

Two front-ends wrap :func:`~repro.runtime.planner.compile_plan`:

* :class:`CompiledTrainStep` — captures one full ``forward + loss + backward``
  training step (Algorithm 1's inner loop) and replays it per batch; leaf
  gradients land on ``Parameter.grad`` exactly as eager backward would, so
  the (eager, cheap) optimizer update composes unchanged.
* :class:`CompiledForward` — captures a no-grad forward (a module call or a
  model's ``run_timesteps``) for serving-style replay.

Both keep a plan cache keyed by the input *signature* (shape, dtype, train
mode, timesteps, step mode): a signature change transparently triggers a
fresh capture — shape-change invalidation — while replays for known
signatures never touch Python autograd or module dispatch again.

Models can extend the signature through an optional ``runtime_signature()``
method (duck-typed): its return value is appended to the plan key, so
architectural state invisible to the input shape — e.g. the sampled
(format, rank) configuration of an entangled supernet
(:mod:`repro.search.supernet`) — re-captures when it changes.  Returning
``None`` marks the current state as *uncompilable* (e.g. a Gumbel-softmax
mixture whose weights change every step); both engines then run that call
eagerly instead of capturing a plan that would bake stale values.
"""

from __future__ import annotations

import time
import weakref
from collections import deque
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.obs import metrics as _metrics
from repro.obs.trace import event as _span_event
from repro.obs.trace import get_tracer
from repro.resilience.errors import NumericFault
from repro.runtime.arena import BufferArena
from repro.runtime.graph import CaptureError, GraphCapture
from repro.runtime.planner import compile_plan

__all__ = ["CompiledTrainStep", "CompiledForward"]

#: Live compiled runtimes, so the registry's backend gauges aggregate over
#: every trainer/engine in the process instead of whichever came last.
_LIVE_RUNTIMES: "weakref.WeakSet" = weakref.WeakSet()


def _sum_backend_field(field: str) -> float:
    total = 0
    for runtime in list(_LIVE_RUNTIMES):
        try:
            total += int(runtime._backend_stats()[field])
        except Exception:  # noqa: BLE001 - a scrape must never raise
            pass
    return float(total)


for _field in ("native_nodes", "fallback_nodes", "native_replays",
               "fallback_replays", "quarantined_nodes"):
    _metrics.gauge(f"repro_runtime_{_field}",
                   f"Compiled-runtime backend accounting: {_field} summed "
                   f"over live runtimes",
                   fn=partial(_sum_backend_field, _field))


def _kernel_children(timings):
    """Normalise profile rows to ``op@backend`` span names.

    The planner suffixes only native-compiled labels; reference kernels are
    unsuffixed, so the trace spells their backend out explicitly.
    """
    return [(label if "@" in label else label + "@numpy", seconds, calls)
            for label, seconds, calls in timings]


class _CompiledBase:
    """Shared plan cache + capture/replay accounting."""

    def __init__(self, arena: Optional[BufferArena] = None, optimize: str = "O0",
                 profile: bool = False, parallel_workers: int = 0,
                 backend: str = "numpy", dtype=None,
                 guard_numerics: bool = False):
        from repro.runtime.backends import get_backend
        from repro.runtime.optimizer import OPT_LEVELS

        if optimize not in OPT_LEVELS:
            raise ValueError(f"optimize must be one of {OPT_LEVELS}, got {optimize!r}")
        if backend != "auto":
            get_backend(backend)  # raise early on unknown names
        self.backend = backend
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float32)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {self.dtype}")
        self.arena = arena or BufferArena()
        self.optimize = optimize
        self.profile = bool(profile)
        self.parallel_workers = int(parallel_workers)
        #: Numeric guard policy: per-node non-finite detection during replay
        #: (typed :class:`NumericFault`) plus automatic quarantine of a
        #: misbehaving *native* kernel to the numpy reference path.
        self.guard_numerics = bool(guard_numerics)
        self.quarantine_count = 0
        self._plans: Dict[tuple, tuple] = {}
        self.capture_count = 0
        self.capture_time_s = 0.0
        self.replay_count = 0
        self.replay_time_s = 0.0
        self.eager_count = 0
        # Bounded window: long-running servers replay millions of times.
        self.replay_durations: "deque[float]" = deque(maxlen=1024)
        # Process-wide instruments (get-or-create: shared across runtimes).
        self._m_captures = _metrics.counter(
            "repro_runtime_captures_total", "Compiled-plan captures")
        self._m_replays = _metrics.counter(
            "repro_runtime_replays_total", "Compiled-plan replays")
        self._m_eager = _metrics.counter(
            "repro_runtime_eager_total", "Eager fallbacks (uncompilable state)")
        self._m_replay_seconds = _metrics.histogram(
            "repro_runtime_replay_seconds", "Replay wall-clock seconds")
        self._m_quarantines = _metrics.counter(
            "repro_runtime_quarantines_total",
            "Native kernels quarantined to the numpy reference path after a "
            "non-finite output")
        _LIVE_RUNTIMES.add(self)

    def _compile(self, capture: GraphCapture):
        return compile_plan(capture, self.arena, optimize=self.optimize,
                            parallel_workers=self.parallel_workers,
                            profile=self.profile, backend=self.backend,
                            guard_numerics=self.guard_numerics)

    def _checked_replay(self, plan, replay_fn):
        """Run ``replay_fn`` under the numeric-guard quarantine policy.

        A :class:`NumericFault` from a *native* kernel demotes exactly that
        node to the numpy reference path (extending the planner's per-node
        fallback accounting) and retries the replay once — the fault was
        raised during forward, before any backward or replay-count side
        effects, so the retry re-runs the step from scratch.  A fault from a
        reference kernel (or a second fault on the retry) is genuine bad
        numerics and propagates to the caller.
        """
        try:
            return replay_fn()
        except NumericFault as fault:
            if not (fault.native and plan.quarantine_node(fault.position)):
                raise
            self.quarantine_count += 1
            self._m_quarantines.inc()
            _span_event("runtime.quarantine", label=fault.label,
                        position=fault.position)
            return replay_fn()

    def _backend_stats(self) -> Dict[str, object]:
        """Backend accounting: what was requested, what runs, and how often
        replays executed native vs fallen-back kernels."""
        from repro.runtime.backends import available_backends, resolve_backend

        plans = [entry[0] for entry in self._plans.values()]
        active = plans[-1].backend if plans else resolve_backend(self.backend).name
        return {
            "requested": self.backend,
            "active": active,
            "available": available_backends(),
            "native_nodes": sum(plan.native_nodes for plan in plans),
            "fallback_nodes": sum(plan.fallback_nodes for plan in plans),
            # Kernel invocations over the runtime's lifetime: every replay of
            # a plan executes each of its native (resp. fallen-back) nodes.
            "native_replays": sum(plan.replay_count * plan.native_nodes
                                  for plan in plans),
            "fallback_replays": sum(plan.replay_count * plan.fallback_nodes
                                    for plan in plans),
            "quarantined_nodes": sum(len(plan.quarantined) for plan in plans),
        }

    def invalidate(self) -> None:
        """Drop every cached plan (buffers return to the arena free lists)."""
        for entry in self._plans.values():
            entry[0].release()
        self._plans.clear()

    @property
    def plan_count(self) -> int:
        return len(self._plans)

    def runtime_stats(self) -> Dict[str, object]:
        """Capture-vs-replay accounting plus arena and latest-plan statistics."""
        stats: Dict[str, object] = {
            "captures": self.capture_count,
            "capture_time_s": self.capture_time_s,
            "replays": self.replay_count,
            "replay_time_s": self.replay_time_s,
            "mean_capture_s": self.capture_time_s / max(1, self.capture_count),
            "mean_replay_s": self.replay_time_s / max(1, self.replay_count),
            "eager_steps": self.eager_count,
            "plans": len(self._plans),
            "optimize": self.optimize,
            "dtype": self.dtype.name,
            "arena": self.arena.stats(),
            "backend": self._backend_stats(),
        }
        if self._plans:
            last_plan = next(reversed(self._plans.values()))[0]
            stats["plan"] = last_plan.stats()
            if last_plan.optimizer_report is not None:
                stats["optimizer"] = last_plan.optimizer_report.as_dict()
        if self.profile:
            merged_seconds: Dict[str, float] = {}
            merged_calls: Dict[str, int] = {}
            for entry in self._plans.values():
                plan = entry[0]
                for label, seconds in plan.kernel_seconds.items():
                    merged_seconds[label] = merged_seconds.get(label, 0.0) + seconds
                    merged_calls[label] = (merged_calls.get(label, 0)
                                           + plan.kernel_calls[label])
            stats["kernels"] = {label: {"seconds": merged_seconds[label],
                                        "calls": merged_calls[label]}
                                for label in merged_seconds}
        return stats


class CompiledTrainStep(_CompiledBase):
    """Capture/replay engine for one BPTT training step.

    The first call with a given input signature runs the step *eagerly under
    the trace* (producing a plan) and finishes it with the planned backward;
    subsequent calls replay the plan on the new batch without building any
    autograd graph.  Integer labels enter the plan as a one-hot placeholder,
    so the loss must accept a one-hot :class:`Tensor` in place of the label
    vector (the built-in losses do).

    The optimizer stays eager: replays deposit gradients on ``param.grad``
    and the caller runs ``optimizer.step()`` as usual — parameter updates are
    picked up by the next replay because parameter slots re-read ``.data``.
    """

    def __init__(self, model, loss_fn: Callable, step_mode: Optional[str] = None,
                 arena: Optional[BufferArena] = None, optimize: str = "O0",
                 profile: bool = False, backend: str = "numpy", dtype=None,
                 guard_numerics: bool = False):
        super().__init__(arena, optimize=optimize, profile=profile,
                         backend=backend, dtype=dtype,
                         guard_numerics=guard_numerics)
        self.model = model
        self.loss_fn = loss_fn
        self.step_mode = step_mode

    def signature(self, batch: np.ndarray) -> Optional[tuple]:
        mode = self.step_mode if self.step_mode is not None else self.model.step_mode
        base = (tuple(batch.shape), batch.dtype.str, bool(self.model.training),
                int(self.model.timesteps), mode)
        hook = getattr(self.model, "runtime_signature", None)
        if callable(hook):
            extra = hook()
            if extra is None:
                return None
            base = base + (extra,)
        return base

    def run(self, batch: np.ndarray, labels: np.ndarray) -> Tuple[float, List[np.ndarray], bool]:
        """Execute one training step; returns ``(loss, per-timestep logits, replayed)``.

        ``replayed`` is ``False`` on capture steps (first occurrence of the
        input signature) and on eager fallbacks (uncompilable model state),
        and ``True`` afterwards.
        """
        batch = np.asarray(batch, dtype=self.dtype)
        labels = np.asarray(labels)
        key = self.signature(batch)
        if key is None:
            return self._eager(batch, labels)
        entry = self._plans.get(key)
        if entry is None:
            return self._capture(key, batch, labels)
        plan, num_classes = entry
        inputs = {
            "batch": batch,
            "labels_onehot": _one_hot(labels, num_classes, self.dtype),
        }
        tracer = get_tracer()
        start = time.perf_counter()
        if tracer.enabled:
            with tracer.span("runtime.replay", kind="train",
                             backend=plan.backend, optimize=self.optimize) as sp:
                if tracer.sample_kernels():
                    outputs, timings = self._checked_replay(
                        plan, lambda: plan.replay_profiled(inputs))
                    tracer.add_timed_children(sp, _kernel_children(timings))
                else:
                    outputs = self._checked_replay(
                        plan, lambda: plan.replay(inputs))
        else:
            outputs = self._checked_replay(plan, lambda: plan.replay(inputs))
        loss = plan.loss_value()
        elapsed = time.perf_counter() - start
        self.replay_count += 1
        self.replay_time_s += elapsed
        self.replay_durations.append(elapsed)
        self._m_replays.inc()
        self._m_replay_seconds.observe(elapsed)
        return loss, outputs, True

    def _eager(self, batch: np.ndarray,
               labels: np.ndarray) -> Tuple[float, List[np.ndarray], bool]:
        """Plain eager autograd step for uncompilable model state.

        Contract-identical to a capture step minus the plan: gradients land
        on ``Parameter.grad`` for the caller's optimiser update.
        """
        with get_tracer().span("runtime.eager", kind="train"):
            outputs = self.model.run_timesteps(batch, step_mode=self.step_mode)
            loss = self.loss_fn(outputs, labels)
            loss.backward()
        self.eager_count += 1
        self._m_eager.inc()
        return float(loss.data), [out.data for out in outputs], False

    def _capture(self, key: tuple, batch: np.ndarray,
                 labels: np.ndarray) -> Tuple[float, List[np.ndarray], bool]:
        mode = self.step_mode if self.step_mode is not None else self.model.step_mode
        start = time.perf_counter()
        with get_tracer().span("runtime.capture", kind="train"):
            with GraphCapture() as capture:
                batch_t = Tensor(batch)
                capture.placeholder(batch_t, "batch")
                outputs = self.model.run_timesteps(batch_t, step_mode=mode)
                num_classes = int(outputs[0].shape[-1])
                onehot_t = Tensor(_one_hot(labels, num_classes, self.dtype))
                capture.placeholder(onehot_t, "labels_onehot")
                loss = self.loss_fn(outputs, onehot_t)
                capture.mark_loss(loss)
                for index, out in enumerate(outputs):
                    capture.mark_output(out, f"logits_t{index}")
            plan = self._compile(capture)
            plan.backward_from_capture()
        self.capture_time_s += time.perf_counter() - start
        self.capture_count += 1
        self._m_captures.inc()
        self._plans[key] = (plan, num_classes)
        return float(loss.data), [out.data for out in outputs], False


class CompiledForward(_CompiledBase):
    """Capture/replay engine for a no-grad forward (inference hot path).

    ``fn`` maps one input :class:`Tensor` to a :class:`Tensor` or a sequence
    of tensors (e.g. per-timestep logits).  Plans are keyed by the input's
    shape/dtype plus the owner's train flag and timestep count, so shape
    changes re-capture automatically.  Accessible as ``module.compile()``.
    """

    def __init__(self, fn: Callable[[Tensor], Union[Tensor, Sequence[Tensor]]],
                 owner=None, arena: Optional[BufferArena] = None,
                 optimize: str = "O0", profile: bool = False,
                 parallel_workers: int = 0, backend: str = "numpy", dtype=None,
                 guard_numerics: bool = False):
        super().__init__(arena, optimize=optimize, profile=profile,
                         parallel_workers=parallel_workers, backend=backend,
                         dtype=dtype, guard_numerics=guard_numerics)
        self.fn = fn
        self.owner = owner

    def signature(self, array: np.ndarray) -> Optional[tuple]:
        extras: tuple = ()
        if self.owner is not None:
            extras = (bool(getattr(self.owner, "training", False)),
                      getattr(self.owner, "timesteps", None))
            hook = getattr(self.owner, "runtime_signature", None)
            if callable(hook):
                extra = hook()
                if extra is None:
                    return None
                extras = extras + (extra,)
        return (tuple(array.shape), array.dtype.str) + extras

    def __call__(self, array: np.ndarray) -> Union[np.ndarray, List[np.ndarray]]:
        """Run the compiled forward; output arrays are valid until the next call."""
        array = np.asarray(array, dtype=self.dtype)
        key = self.signature(array)
        if key is None:
            return self._eager(array)
        entry = self._plans.get(key)
        if entry is None:
            return self._capture(key, array)
        plan, is_sequence = entry
        tracer = get_tracer()
        start = time.perf_counter()
        if tracer.enabled:
            with tracer.span("runtime.replay", kind="forward",
                             backend=plan.backend, optimize=self.optimize) as sp:
                if tracer.sample_kernels():
                    outputs, timings = self._checked_replay(
                        plan,
                        lambda: plan.replay_profiled({"input": array},
                                                     grads=False))
                    tracer.add_timed_children(sp, _kernel_children(timings))
                else:
                    outputs = self._checked_replay(
                        plan, lambda: plan.replay({"input": array}, grads=False))
        else:
            outputs = self._checked_replay(
                plan, lambda: plan.replay({"input": array}, grads=False))
        elapsed = time.perf_counter() - start
        self.replay_count += 1
        self.replay_time_s += elapsed
        self.replay_durations.append(elapsed)
        self._m_replays.inc()
        self._m_replay_seconds.observe(elapsed)
        return outputs if is_sequence else outputs[0]

    def _eager(self, array: np.ndarray) -> Union[np.ndarray, List[np.ndarray]]:
        """No-grad eager forward for uncompilable owner state."""
        with get_tracer().span("runtime.eager", kind="forward"):
            with no_grad():
                result = self.fn(Tensor(array))
        self.eager_count += 1
        self._m_eager.inc()
        if isinstance(result, (list, tuple)):
            return [out.data for out in result]
        return result.data

    def _capture(self, key: tuple, array: np.ndarray):
        start = time.perf_counter()
        with get_tracer().span("runtime.capture", kind="forward"):
            with no_grad():
                with GraphCapture() as capture:
                    input_t = Tensor(array)
                    capture.placeholder(input_t, "input")
                    result = self.fn(input_t)
                    is_sequence = isinstance(result, (list, tuple))
                    tensors = list(result) if is_sequence else [result]
                    for index, out in enumerate(tensors):
                        if not isinstance(out, Tensor):
                            raise CaptureError(
                                f"compiled forward must return Tensors, got {type(out).__name__}"
                            )
                        capture.mark_output(out, f"out{index}")
            plan = self._compile(capture)
        self.capture_time_s += time.perf_counter() - start
        self.capture_count += 1
        self._m_captures.inc()
        self._plans[key] = (plan, is_sequence)
        arrays = [out.data for out in tensors]
        return arrays if is_sequence else arrays[0]


def _one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
