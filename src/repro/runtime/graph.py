"""Graph capture: turn one eager step into a structured op graph.

:class:`GraphCapture` installs itself as the autograd op trace (see
:func:`repro.autograd.tensor.set_trace`).  Every differentiable op executed
while the capture is active reports an :class:`OpNode` — op id, input/output
*slot* references, static attributes and optional saved forward state.  Slots
classify every array the step touches:

* ``INPUT``   — declared placeholders (batch data, one-hot labels); replays
  rebind them to fresh arrays.
* ``LEAF``    — autograd leaves that require grad (parameters); replays read
  ``tensor.data`` live, so optimizer updates between replays are visible, and
  the planned backward writes their gradients back.
* ``CONST``   — any other pre-existing tensor; its array is baked *by
  reference*, so in-place updates (e.g. batch-norm running buffers viewed
  through a reshape) stay visible.
* ``INTER``   — op outputs, owned by the plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, set_trace

__all__ = ["CaptureError", "GraphCapture", "OpNode", "Region", "Slot",
           "INPUT", "LEAF", "CONST", "INTER"]

INPUT, LEAF, CONST, INTER = range(4)


class Region:
    """A tagged span of recorded nodes (``nodes[start:stop]``).

    Emitted by :func:`repro.autograd.tensor.trace_region`; the graph
    optimizer uses regions to locate composite structures such as the TT
    sub-convolution wirings without structural guessing.
    """

    __slots__ = ("tag", "start", "stop")

    def __init__(self, tag: str, start: int, stop: int = -1):
        self.tag = tag
        self.start = start
        self.stop = stop

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region({self.tag!r}, {self.start}:{self.stop})"


class CaptureError(RuntimeError):
    """The executed step contains state the runtime cannot capture."""


class Slot:
    """One array position in the captured graph."""

    __slots__ = ("index", "kind", "shape", "dtype", "array", "tensor", "name", "producer")

    def __init__(self, index: int, kind: int, array: np.ndarray,
                 tensor: Optional[Tensor] = None, name: str = "",
                 producer: Optional[int] = None):
        self.index = index
        self.kind = kind
        self.shape = tuple(array.shape)
        self.dtype = array.dtype
        self.array = array          # captured value (by reference)
        self.tensor = tensor        # kept for LEAF slots (live .data / .grad)
        self.name = name
        self.producer = producer    # node index for INTER slots


class OpNode:
    """One recorded op: ``op(inputs) -> out`` plus static attrs and saved state."""

    __slots__ = ("op", "inputs", "out", "attrs", "saved", "rt_saved")

    def __init__(self, op: str, inputs: Tuple[int, ...], out: Optional[int],
                 attrs: dict, saved=None):
        self.op = op
        self.inputs = inputs
        self.out = out
        self.attrs = attrs
        self.saved = saved          # capture-time forward state (Function ctx, mask)
        self.rt_saved = saved       # refreshed by each replayed forward


class GraphCapture:
    """Record every traced op executed inside a ``with`` block.

    Use :meth:`placeholder` *before* running the step to declare which
    tensors are replay-varying inputs; everything else the step reads is
    classified automatically (LEAF for grad-requiring leaves, CONST
    otherwise).  A tensor that carries graph linkage but was created outside
    the capture would silently bake a stale value, so it raises
    :class:`CaptureError` instead.
    """

    def __init__(self):
        self.slots: List[Slot] = []
        self.nodes: List[OpNode] = []
        self._by_id: Dict[int, int] = {}
        self._keepalive: List[Tensor] = []   # keeps id() keys unique
        self.input_names: Dict[str, int] = {}
        self.outputs: List[Tuple[str, int]] = []
        self.loss_slot: Optional[int] = None
        self.regions: List[Region] = []
        self._prev_trace = None

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "GraphCapture":
        self._prev_trace = set_trace(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_trace(self._prev_trace)

    # -- declaration ----------------------------------------------------------

    def placeholder(self, tensor: Tensor, name: str) -> int:
        """Declare ``tensor`` as a named replay-varying input."""
        if id(tensor) in self._by_id:
            raise CaptureError(f"tensor already captured; declare placeholder '{name}' first")
        if name in self.input_names:
            raise CaptureError(f"duplicate placeholder name '{name}'")
        index = self._new_slot(INPUT, tensor.data, tensor=None, name=name)
        self._register(tensor, index)
        self.input_names[name] = index
        return index

    def mark_output(self, tensor: Tensor, name: str) -> int:
        """Mark ``tensor`` as a plan output returned by every replay."""
        index = self._slot_of(tensor)
        self.outputs.append((name, index))
        return index

    def mark_loss(self, tensor: Tensor) -> int:
        """Mark the scalar backward root of the captured step."""
        if tensor.size != 1:
            raise CaptureError(f"loss must be scalar, got shape {tensor.shape}")
        self.loss_slot = self._slot_of(tensor)
        return self.loss_slot

    # -- trace protocol (called from repro.autograd.tensor) -------------------

    def record(self, op: str, inputs: Tuple[Tensor, ...], out: Optional[Tensor],
               attrs: dict, saved) -> None:
        input_slots = tuple(self._slot_of(t) for t in inputs)
        if out is None:
            out_slot: Optional[int] = None
        else:
            out_slot = self._new_slot(INTER, out.data, producer=len(self.nodes))
            self._register(out, out_slot)
        self.nodes.append(OpNode(op, input_slots, out_slot, attrs, saved))

    def region_begin(self, tag: str) -> Region:
        """Open a tagged region starting at the next recorded node."""
        region = Region(tag, len(self.nodes))
        self.regions.append(region)
        return region

    def region_end(self, region: Region) -> None:
        region.stop = len(self.nodes)

    # -- internals -------------------------------------------------------------

    def _register(self, tensor: Tensor, index: int) -> None:
        self._by_id[id(tensor)] = index
        self._keepalive.append(tensor)

    def _new_slot(self, kind: int, array: np.ndarray, tensor: Optional[Tensor] = None,
                  name: str = "", producer: Optional[int] = None) -> int:
        index = len(self.slots)
        self.slots.append(Slot(index, kind, array, tensor=tensor, name=name,
                               producer=producer))
        return index

    def _slot_of(self, tensor: Tensor) -> int:
        index = self._by_id.get(id(tensor))
        if index is not None:
            return index
        if tensor._prev or tensor._backward is not None:
            raise CaptureError(
                "encountered a graph tensor produced outside the capture (or by an "
                "untraced op); the runtime cannot replay it — pass it as a "
                "placeholder or keep it out of the compiled step"
            )
        if tensor.requires_grad:
            index = self._new_slot(LEAF, tensor.data, tensor=tensor)
        else:
            index = self._new_slot(CONST, tensor.data)
        self._register(tensor, index)
        return index

    # -- introspection -----------------------------------------------------------

    def op_histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GraphCapture(nodes={len(self.nodes)}, slots={len(self.slots)}, "
                f"inputs={sorted(self.input_names)}, outputs={len(self.outputs)})")
