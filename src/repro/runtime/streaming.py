"""Persistent-membrane streaming execution for continuous event streams.

Fixed-``T`` serving treats every request as an independent window: state is
reset, ``T`` frames run, logits come back.  Event-camera workloads
(``examples/event_data_ncaltech.py``) are *streams* — frames keep arriving,
and the informative quantity is the network's running temporal state, not a
window boundary.  The inference LIF kernels already keep a rolling membrane
(:meth:`repro.snn.neurons._FusedLIFSequence.forward_inference`), so the only
missing piece is an entry point that carries that membrane *between* calls.

:class:`StreamingForward` is that entry point.  It executes chunks of a
``(T, N, C, H, W)`` stream through a model's fused no-grad forward while the
caller holds the temporal state as an explicit, detached
:class:`TemporalState` value:

* the state is *data*, not hidden module state — sessions can be suspended,
  migrated to another replica holding an identical snapshot (all fleet
  replicas are copies of one merged engine), or dropped, without touching
  the model;
* the model is left reset after every chunk, so interleaving streaming
  chunks with ordinary fixed-``T`` batch requests on the same engine is
  safe (the engine's lock provides the mutual exclusion);
* chunked execution is *equivalent* to the one-shot run: the fused LIF
  node seeds its recurrence from the carried membrane and temporal-norm
  layers resume from the carried ``time_index``, so the concatenated
  per-timestep logits of consecutive chunks match a single
  ``run_timesteps`` over the full sequence (asserted to 1e-6 in
  ``tests/test_fleet.py`` and the fleet benchmarks).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.snn.functional import reset_model_state
from repro.snn.neurons import LIFNeuron

__all__ = ["TemporalState", "StreamingForward"]


class TemporalState:
    """Detached snapshot of a model's temporal state between stream chunks.

    ``membranes`` holds one entry per LIF layer (traversal order): ``None``
    before the first chunk, afterwards the post-reset membrane array carried
    into the next chunk.  ``time_indices`` holds the ``time_index`` of every
    temporal-norm layer.  ``timesteps_seen`` counts how many stream frames
    produced this state — the denominator for running-mean logits.
    """

    __slots__ = ("membranes", "time_indices", "timesteps_seen")

    def __init__(self, membranes: List[Optional[np.ndarray]],
                 time_indices: List[int], timesteps_seen: int = 0):
        self.membranes = membranes
        self.time_indices = time_indices
        self.timesteps_seen = timesteps_seen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = sum(1 for m in self.membranes if m is not None)
        return (f"TemporalState(lif_layers={len(self.membranes)}, live={live}, "
                f"timesteps_seen={self.timesteps_seen})")


class StreamingForward:
    """Run a model chunk-by-chunk with explicit, persistent temporal state.

    The caller is responsible for serialising calls per model instance (the
    serving engine wraps this behind its lock).  ``run_chunk`` installs the
    supplied state, executes the chunk through the fused no-grad forward
    (which uses the rolling-membrane LIF inference kernels), captures the
    updated state, and resets the model so no session state leaks into the
    next batch-path forward.
    """

    def __init__(self, model):
        self.model = model
        self._lifs = [m for m in model.modules() if isinstance(m, LIFNeuron)]
        self._timed = [m for m in model.modules()
                       if not isinstance(m, LIFNeuron) and hasattr(m, "time_index")]

    # -- state management ---------------------------------------------------------

    def initial_state(self) -> TemporalState:
        """The state of a brand-new stream (no membrane, ``t = 0``)."""
        return TemporalState([None] * len(self._lifs), [0] * len(self._timed), 0)

    def _install(self, state: TemporalState) -> None:
        if len(state.membranes) != len(self._lifs) or \
                len(state.time_indices) != len(self._timed):
            raise ValueError(
                f"TemporalState shape mismatch: state has {len(state.membranes)} "
                f"membranes / {len(state.time_indices)} time indices, model has "
                f"{len(self._lifs)} LIF layers / {len(self._timed)} timed layers"
            )
        for lif, membrane in zip(self._lifs, state.membranes):
            lif.state.membrane = None if membrane is None else Tensor(membrane)
        for module, t in zip(self._timed, state.time_indices):
            module.time_index = t

    def _capture(self, state: TemporalState, chunk_steps: int) -> TemporalState:
        membranes = []
        for lif in self._lifs:
            held = lif.state.membrane
            membranes.append(None if held is None else np.array(held.data, copy=True))
        time_indices = [int(module.time_index) for module in self._timed]
        return TemporalState(membranes, time_indices,
                             state.timesteps_seen + chunk_steps)

    # -- execution ----------------------------------------------------------------

    def run_chunk(self, chunk: np.ndarray,
                  state: TemporalState) -> Tuple[np.ndarray, TemporalState]:
        """Advance the stream by one ``(T, N, C, H, W)`` chunk.

        Returns ``(logits_sum, new_state)`` where ``logits_sum`` is the
        ``(N, num_classes)`` sum of the chunk's per-timestep logits (the
        caller accumulates sums across chunks and divides by
        ``new_state.timesteps_seen`` for the running mean — identical
        arithmetic to the one-shot time-average), and ``new_state`` is the
        temporal state to pass into the next chunk.  The input ``state`` is
        not mutated.
        """
        chunk = np.asarray(chunk)
        if chunk.ndim != 5:
            raise ValueError(f"expected a (T, N, C, H, W) chunk, got shape {chunk.shape}")
        self._install(state)
        try:
            with no_grad():
                outputs = self.model.stream_timesteps(chunk, step_mode="fused")
            logits_sum = outputs[0].data.copy()
            for out in outputs[1:]:
                logits_sum += out.data
            new_state = self._capture(state, chunk.shape[0])
        finally:
            # Leave the model pristine: the next fixed-T batch forward (or
            # another session's chunk) must not observe this stream's state.
            reset_model_state(self.model)
        return logits_sum, new_state
