"""Op registry: pure ``(inputs, attrs) -> output`` kernels for every traced op.

Each differentiable op recorded by the autograd trace has a registry entry
pairing a *forward kernel* (pure function of the input arrays and static
attrs, optionally writing into a preallocated ``out`` buffer) with a
*backward kernel* (gradients of the inputs from the upstream gradient, the
forward arrays and any saved state).  The kernels replicate the eager
closures' NumPy math exactly, so a replayed step is numerically equivalent to
the eager step it was captured from.

Custom :class:`~repro.autograd.tensor.Function` subclasses (convolutions,
pooling, the fused LIF recurrence) flow through the single generic ``"fn"``
entry: replay re-instantiates the recorded context class with its captured
constructor kwargs and re-runs its ``forward``/``backward``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.autograd.tensor import _unbroadcast

__all__ = ["OpDef", "OPS", "register_op", "get_op"]


class OpDef:
    """Registry entry for one traced op."""

    __slots__ = ("name", "forward", "backward", "forward_inference", "alias",
                 "out_capable", "inplace_safe", "differentiable")

    def __init__(self, name: str, forward: Callable, backward: Optional[Callable] = None,
                 forward_inference: Optional[Callable] = None,
                 alias: bool = False, out_capable: bool = False,
                 inplace_safe: bool = False, differentiable: bool = True):
        self.name = name
        self.forward = forward          # (inputs, attrs, out=None) -> array | (array, saved) | None
        self.backward = backward        # (grad, inputs, out, saved, attrs, needs) -> [grad | None]
        # Optional leaner forward for plans that will never run backward:
        # skips saved-state materialisation (im2col columns, argmax maps,
        # membrane histories) the gradient kernels would otherwise need.
        self.forward_inference = forward_inference
        self.alias = alias              # output is a view of inputs[0] (no buffer)
        self.out_capable = out_capable  # forward can write into a preallocated buffer
        self.inplace_safe = inplace_safe  # elementwise: out may alias a same-shape input
        self.differentiable = differentiable


OPS: Dict[str, OpDef] = {}


def register_op(name: str, forward: Callable, backward: Optional[Callable] = None,
                **flags) -> None:
    OPS[name] = OpDef(name, forward, backward, **flags)


def get_op(name: str) -> OpDef:
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(
            f"traced op '{name}' has no registry kernel — register it in repro.runtime.ops"
        ) from None


# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------


def _add_fwd(ins, attrs, out=None):
    if out is not None:
        return np.add(ins[0], ins[1], out=out)
    return ins[0] + ins[1]


def _add_bwd(g, ins, out, saved, attrs, needs):
    return [g if needs[0] else None, g if needs[1] else None]


def _neg_fwd(ins, attrs, out=None):
    if out is not None:
        return np.negative(ins[0], out=out)
    return -ins[0]


def _neg_bwd(g, ins, out, saved, attrs, needs):
    return [-g]


def _mul_fwd(ins, attrs, out=None):
    if out is not None:
        return np.multiply(ins[0], ins[1], out=out)
    return ins[0] * ins[1]


def _mul_bwd(g, ins, out, saved, attrs, needs):
    a, b = ins
    return [g * b if needs[0] else None, g * a if needs[1] else None]


def _div_fwd(ins, attrs, out=None):
    if out is not None:
        return np.divide(ins[0], ins[1], out=out)
    return ins[0] / ins[1]


def _div_bwd(g, ins, out, saved, attrs, needs):
    a, b = ins
    ga = g / b if needs[0] else None
    gb = -g * a / (b ** 2) if needs[1] else None
    return [ga, gb]


def _pow_fwd(ins, attrs, out=None):
    return ins[0] ** attrs["exponent"]


def _pow_bwd(g, ins, out, saved, attrs, needs):
    exponent = attrs["exponent"]
    return [g * exponent * ins[0] ** (exponent - 1)]


def _matmul_fwd(ins, attrs, out=None):
    return ins[0] @ ins[1]


def _matmul_bwd(g, ins, out, saved, attrs, needs):
    a, b = ins
    ga = gb = None
    if needs[0]:
        if b.ndim == 1:
            ga = np.outer(g, b) if a.ndim > 1 else g * b
        else:
            ga = g @ np.swapaxes(b, -1, -2)
        ga = _unbroadcast(np.asarray(ga), a.shape)
    if needs[1]:
        if a.ndim == 1:
            gb = np.outer(a, g) if b.ndim > 1 else a * g
        else:
            gb = np.swapaxes(a, -1, -2) @ g
        gb = _unbroadcast(np.asarray(gb), b.shape)
    return [ga, gb]


register_op("add", _add_fwd, _add_bwd, out_capable=True, inplace_safe=True)
register_op("neg", _neg_fwd, _neg_bwd, out_capable=True, inplace_safe=True)
register_op("mul", _mul_fwd, _mul_bwd, out_capable=True, inplace_safe=True)
register_op("div", _div_fwd, _div_bwd, out_capable=True, inplace_safe=True)
register_op("pow", _pow_fwd, _pow_bwd)
register_op("matmul", _matmul_fwd, _matmul_bwd)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def _reduced_grad_shape(g, a, axis, keepdims):
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(ax % a.ndim for ax in axes)
        shape = [1 if i in axes else s for i, s in enumerate(a.shape)]
        g = np.asarray(g).reshape(shape)
    return g


def _sum_fwd(ins, attrs, out=None):
    return ins[0].sum(axis=attrs["axis"], keepdims=attrs["keepdims"])


def _sum_bwd(g, ins, out, saved, attrs, needs):
    a = ins[0]
    g = _reduced_grad_shape(g, a, attrs["axis"], attrs["keepdims"])
    return [np.broadcast_to(g, a.shape)]


def _max_fwd(ins, attrs, out=None):
    return ins[0].max(axis=attrs["axis"], keepdims=attrs["keepdims"])


def _max_bwd(g, ins, out, saved, attrs, needs):
    a = ins[0]
    axis, keepdims = attrs["axis"], attrs["keepdims"]
    expanded = a.max(axis=axis, keepdims=True)
    g = _reduced_grad_shape(g, a, axis, keepdims)
    mask = (a == expanded).astype(a.dtype)
    denom = mask.sum(axis=axis, keepdims=True)
    return [mask * g / denom]


register_op("sum", _sum_fwd, _sum_bwd)
register_op("max", _max_fwd, _max_bwd)


# ---------------------------------------------------------------------------
# shape manipulation (views — aliased, zero-copy on replay)
# ---------------------------------------------------------------------------


def _reshape_fwd(ins, attrs, out=None):
    return ins[0].reshape(attrs["shape"])


def _reshape_bwd(g, ins, out, saved, attrs, needs):
    return [np.asarray(g).reshape(ins[0].shape)]


def _transpose_fwd(ins, attrs, out=None):
    return ins[0].transpose(attrs["axes"])


def _transpose_bwd(g, ins, out, saved, attrs, needs):
    return [np.asarray(g).transpose(np.argsort(attrs["axes"]))]


def _squeeze_fwd(ins, attrs, out=None):
    return np.squeeze(ins[0], axis=attrs["axis"])


def _unsqueeze_fwd(ins, attrs, out=None):
    return np.expand_dims(ins[0], axis=attrs["axis"])


def _restore_shape_bwd(g, ins, out, saved, attrs, needs):
    return [np.asarray(g).reshape(ins[0].shape)]


def _getitem_fwd(ins, attrs, out=None):
    return ins[0][attrs["index"]]


def _getitem_bwd(g, ins, out, saved, attrs, needs):
    full = np.zeros_like(ins[0])
    np.add.at(full, attrs["index"], np.asarray(g))
    return [full]


def _detach_fwd(ins, attrs, out=None):
    return ins[0]


register_op("reshape", _reshape_fwd, _reshape_bwd, alias=True)
register_op("transpose", _transpose_fwd, _transpose_bwd, alias=True)
register_op("squeeze", _squeeze_fwd, _restore_shape_bwd, alias=True)
register_op("unsqueeze", _unsqueeze_fwd, _restore_shape_bwd, alias=True)
register_op("getitem", _getitem_fwd, _getitem_bwd)
register_op("detach", _detach_fwd, None, alias=True, differentiable=False)
register_op("copy", lambda ins, attrs, out=None: ins[0].copy(), None, differentiable=False)


# ---------------------------------------------------------------------------
# elementwise math
# ---------------------------------------------------------------------------


def _exp_fwd(ins, attrs, out=None):
    if out is not None:
        return np.exp(ins[0], out=out)
    return np.exp(ins[0])


def _exp_bwd(g, ins, out, saved, attrs, needs):
    return [g * out]


def _log_fwd(ins, attrs, out=None):
    if out is not None:
        return np.log(ins[0], out=out)
    return np.log(ins[0])


def _log_bwd(g, ins, out, saved, attrs, needs):
    return [g / ins[0]]


def _sqrt_fwd(ins, attrs, out=None):
    if out is not None:
        return np.sqrt(ins[0], out=out)
    return np.sqrt(ins[0])


def _sqrt_bwd(g, ins, out, saved, attrs, needs):
    return [g * 0.5 / np.maximum(out, 1e-12)]


def _tanh_fwd(ins, attrs, out=None):
    if out is not None:
        return np.tanh(ins[0], out=out)
    return np.tanh(ins[0])


def _tanh_bwd(g, ins, out, saved, attrs, needs):
    return [g * (1.0 - out ** 2)]


def _sigmoid_fwd(ins, attrs, out=None):
    return 1.0 / (1.0 + np.exp(-ins[0]))


def _sigmoid_bwd(g, ins, out, saved, attrs, needs):
    return [g * out * (1.0 - out)]


def _relu_fwd(ins, attrs, out=None):
    a = ins[0]
    mask = (a > 0).astype(a.dtype)
    if out is not None:
        return np.multiply(a, mask, out=out)
    return a * mask


def _relu_bwd(g, ins, out, saved, attrs, needs):
    a = ins[0]
    return [g * (a > 0).astype(a.dtype)]


def _abs_fwd(ins, attrs, out=None):
    if out is not None:
        return np.abs(ins[0], out=out)
    return np.abs(ins[0])


def _abs_bwd(g, ins, out, saved, attrs, needs):
    return [g * np.sign(ins[0])]


def _clip_fwd(ins, attrs, out=None):
    return np.clip(ins[0], attrs["low"], attrs["high"])


def _clip_bwd(g, ins, out, saved, attrs, needs):
    a = ins[0]
    mask = ((a >= attrs["low"]) & (a <= attrs["high"])).astype(a.dtype)
    return [g * mask]


register_op("exp", _exp_fwd, _exp_bwd, out_capable=True, inplace_safe=True)
register_op("log", _log_fwd, _log_bwd, out_capable=True, inplace_safe=True)
register_op("sqrt", _sqrt_fwd, _sqrt_bwd, out_capable=True, inplace_safe=True)
register_op("tanh", _tanh_fwd, _tanh_bwd, out_capable=True, inplace_safe=True)
register_op("sigmoid", _sigmoid_fwd, _sigmoid_bwd)
register_op("relu", _relu_fwd, _relu_bwd, out_capable=True, inplace_safe=True)
register_op("abs", _abs_fwd, _abs_bwd, out_capable=True, inplace_safe=True)
register_op("clip", _clip_fwd, _clip_bwd)


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def _stack_fwd(ins, attrs, out=None):
    return np.stack(ins, axis=attrs["axis"])


def _stack_bwd(g, ins, out, saved, attrs, needs):
    axis = attrs["axis"]
    pieces = np.split(np.asarray(g), len(ins), axis=axis)
    return [np.squeeze(p, axis=axis) if needs[k] else None
            for k, p in enumerate(pieces)]


def _concat_fwd(ins, attrs, out=None):
    return np.concatenate(ins, axis=attrs["axis"])


def _concat_bwd(g, ins, out, saved, attrs, needs):
    axis = attrs["axis"]
    g = np.asarray(g)
    grads: List[Optional[np.ndarray]] = []
    offset = 0
    for k, a in enumerate(ins):
        size = a.shape[axis]
        if needs[k]:
            index = [slice(None)] * g.ndim
            index[axis] = slice(offset, offset + size)
            grads.append(g[tuple(index)])
        else:
            grads.append(None)
        offset += size
    return grads


register_op("stack", _stack_fwd, _stack_bwd)
register_op("concatenate", _concat_fwd, _concat_bwd)


# ---------------------------------------------------------------------------
# comparisons & other non-differentiable helpers
# ---------------------------------------------------------------------------


def _make_compare(ufunc):
    def fwd(ins, attrs, out=None):
        return ufunc(ins[0], ins[1]).astype(ins[0].dtype)

    def fwd_scalar(ins, attrs, out=None):
        return ufunc(ins[0], attrs["other"]).astype(ins[0].dtype)

    return fwd, fwd_scalar


for _name, _ufunc in (("greater", np.greater), ("greater_equal", np.greater_equal),
                      ("less", np.less), ("less_equal", np.less_equal)):
    _fwd, _fwd_scalar = _make_compare(_ufunc)
    register_op(_name, _fwd, None, differentiable=False)
    register_op(_name + "_scalar", _fwd_scalar, None, differentiable=False)


def _stopgrad_max_fwd(ins, attrs, out=None):
    return ins[0].max(axis=attrs["axis"], keepdims=True)


register_op("stopgrad_max", _stopgrad_max_fwd, None, differentiable=False)


# ---------------------------------------------------------------------------
# nn-level ops: padding, dropout, fused batch-norm sequence, running stats
# ---------------------------------------------------------------------------


def _pad2d_fwd(ins, attrs, out=None):
    ph, pw = attrs["padding"]
    return np.pad(ins[0], ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")


def _pad2d_bwd(g, ins, out, saved, attrs, needs):
    ph, pw = attrs["padding"]
    h, w = ins[0].shape[-2], ins[0].shape[-1]
    return [np.asarray(g)[..., ph:ph + h, pw:pw + w]]


register_op("pad2d", _pad2d_fwd, _pad2d_bwd)


def _dropout_fwd(ins, attrs, out=None):
    x = ins[0]
    p = attrs["p"]
    mask = (attrs["rng"].random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * mask, mask


def _dropout_bwd(g, ins, out, saved, attrs, needs):
    return [g * saved]


register_op("dropout", _dropout_fwd, _dropout_bwd)


def _fn_fwd(ins, attrs, out=None):
    kwargs = attrs["kwargs"]
    ctx = attrs["cls"](**kwargs) if kwargs else attrs["cls"]()
    return ctx.forward(*ins), ctx


def _fn_infer(ins, attrs, out=None):
    kwargs = attrs["kwargs"]
    ctx = attrs["cls"](**kwargs) if kwargs else attrs["cls"]()
    method = getattr(ctx, "forward_inference", None)
    if method is not None:
        return method(*ins)
    # The context (and whatever its forward stashed) dies right here.
    return ctx.forward(*ins)


def _fn_bwd(g, ins, out, saved, attrs, needs):
    grads = saved.backward(np.asarray(g))
    if not isinstance(grads, (tuple, list)):
        grads = (grads,)
    grads = list(grads)
    grads.extend([None] * (len(ins) - len(grads)))
    return grads


register_op("fn", _fn_fwd, _fn_bwd, forward_inference=_fn_infer)


def _bn_seq_fwd(ins, attrs, out=None):
    ctx = attrs["cls"](**attrs["ctor"])
    result = ctx.forward(*ins)
    if attrs["ctor"]["training"]:
        # Same shared helper as the eager path — bitwise-equal statistics.
        ctx.update_running_stats(attrs["ctor"]["running_mean"],
                                 attrs["ctor"]["running_var"], attrs["momentum"])
    return result, ctx


def _bn_seq_infer(ins, attrs, out=None):
    if attrs["ctor"]["training"]:
        # Batch statistics and running-buffer updates must stay exact.
        result, _ = _bn_seq_fwd(ins, attrs)
        return result
    ctx = attrs["cls"](**attrs["ctor"])
    return ctx.forward_inference(*ins)


register_op("bn_seq", _bn_seq_fwd, _fn_bwd, forward_inference=_bn_seq_infer)


# ---------------------------------------------------------------------------
# optimizer-specialized kernels (installed by repro.runtime.optimizer)
# ---------------------------------------------------------------------------
#
# ``fn_cached`` / ``bn_seq_cached`` are the workspace-backed variants of
# ``fn`` / ``bn_seq``: the graph optimizer replaces the per-replay context
# re-instantiation with ONE persistent context per graph node, carrying a
# :class:`~repro.autograd.tensor.Workspace` so the kernel's large temporaries
# (im2col columns, padded images, membrane histories, normalised activations)
# are allocated once and reused by every replay.  ``ew_chain`` executes a
# fused run of elementwise sub-ops with a fused backward.


def _fn_cached_fwd(ins, attrs, out=None):
    ctx = attrs["ctx"]
    return ctx.forward(*ins), ctx


def _fn_cached_infer(ins, attrs, out=None):
    return attrs["infer"](*ins)


register_op("fn_cached", _fn_cached_fwd, _fn_bwd, forward_inference=_fn_cached_infer)


def _bn_cached_fwd(ins, attrs, out=None):
    ctx = attrs["ctx"]
    result = ctx.forward(*ins)
    if attrs["training"]:
        # Same shared helper as the eager path — bitwise-equal statistics.
        ctx.update_running_stats(attrs["running_mean"], attrs["running_var"],
                                 attrs["momentum"])
    return result, ctx


def _bn_cached_infer(ins, attrs, out=None):
    if attrs["training"]:
        result, _ = _bn_cached_fwd(ins, attrs)
        return result
    return attrs["ctx"].forward_inference(*ins)


register_op("bn_seq_cached", _bn_cached_fwd, _fn_bwd, forward_inference=_bn_cached_infer)


def _ew_chain_run(ins, attrs, save: bool):
    """Execute the fused elementwise program; optionally save per-step state.

    Each program step holds the *registered* forward kernel of the original
    op, so the fused run performs the exact same ufunc sequence the unfused
    nodes would — out-capable steps merely write into persistent workspace
    buffers instead of fresh arrays.
    """
    ws = attrs["ws"]
    cur = ins[0]
    saved = [] if save else None
    for index, step in enumerate(attrs["prog"]):
        sub_ins = [cur if spec < 0 else ins[spec] for spec in step["ins"]]
        if step["buffered"]:
            buffer = ws.buf(str(index), step["shape"], step["dtype"])
            result = step["fwd"](sub_ins, step["attrs"], buffer)
        else:
            result = step["fwd"](sub_ins, step["attrs"])
        if saved is not None:
            saved.append((sub_ins, result))
        cur = result
    if saved is not None:
        return cur, saved
    return cur


def _ew_chain_fwd(ins, attrs, out=None):
    return _ew_chain_run(ins, attrs, save=True)


def _ew_chain_infer(ins, attrs, out=None):
    return _ew_chain_run(ins, attrs, save=False)


def _ew_chain_bwd(g, ins, out, saved, attrs, needs):
    prog = attrs["prog"]
    grads: List[Optional[np.ndarray]] = [None] * len(ins)
    g_cur = np.asarray(g)
    for index in range(len(prog) - 1, -1, -1):
        step = prog[index]
        sub_ins, sub_out = saved[index]
        sub_grads = step["bwd"](g_cur, sub_ins, sub_out, None, step["attrs"],
                                step["needs"])
        g_next = None
        for position, spec in enumerate(step["ins"]):
            sub_grad = sub_grads[position]
            if sub_grad is None:
                continue
            if spec < 0:
                g_next = np.asarray(sub_grad)
            elif grads[spec] is None:
                grads[spec] = np.asarray(sub_grad)
            else:
                grads[spec] = grads[spec] + sub_grad
        if index == 0:
            break
        if g_next is None:
            # The thread gradient vanished (should not happen for the fused
            # op set, all of which are differentiable in their first input).
            return grads
        # Mirror the eager engine's per-slot reduction of broadcast grads.
        previous = prog[index - 1]
        g_cur = _unbroadcast(np.asarray(g_next, dtype=previous["dtype"]),
                             previous["shape"])
    return grads


register_op("ew_chain", _ew_chain_fwd, _ew_chain_bwd, forward_inference=_ew_chain_infer)


def _view_cached_fwd(ins, attrs, out=None):
    """Alias-op forward memoised on the *identity* of the source array.

    Specialized kernels write into identity-stable workspace buffers, so in
    an optimized plan most view chains see the same base array every replay
    — the reshape/transpose view is then constructed once and reused (views
    share memory, so content updates flow through automatically).  Results
    that are *not* views (a reshape of a non-viewable layout returns a
    copy) are never cached: a frozen copy would go stale the moment the
    source array is rewritten in place.
    """
    source = ins[0]
    cache = attrs["cache"]
    if cache[0] is source:
        return cache[1]
    result = attrs["inner_fwd"]([source], attrs["inner"])
    if result.base is not None:
        cache[0] = source
        cache[1] = result
    return result


def _view_cached_bwd(g, ins, out, saved, attrs, needs):
    return attrs["inner_bwd"](g, ins, out, saved, attrs["inner"], needs)


register_op("view_cached", _view_cached_fwd, _view_cached_bwd, alias=True)


def _bn_stats_fwd(ins, attrs, out=None):
    x = ins[0]
    axes = attrs["axes"]
    momentum = attrs["momentum"]
    batch_mean = x.mean(axis=axes)
    batch_var = x.var(axis=axes)
    attrs["running_mean"][...] = (
        (1 - momentum) * attrs["running_mean"] + momentum * batch_mean
    )
    attrs["running_var"][...] = (
        (1 - momentum) * attrs["running_var"] + momentum * batch_var
    )
    return None


register_op("bn_stats", _bn_stats_fwd, None, differentiable=False)
