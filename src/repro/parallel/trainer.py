"""Data-parallel BPTT training: N replicas, one optimizer, shared-memory all-reduce.

:class:`DataParallelTrainer` keeps the exact training semantics of
:class:`~repro.training.trainer.BPTTTrainer` while splitting every batch
across ``num_workers`` forked replicas (each replaying its own compiled O1
plan) × ``accum_steps`` sequential micro-shards per worker:

1. every effective batch of ``config.batch_size`` samples is partitioned
   into ``num_workers * accum_steps`` contiguous micro-shards (the same
   deterministic ``np.array_split`` partition the shard-aware
   :class:`~repro.data.datasets.DataLoader` uses);
2. worker ``w`` runs its micro-shards sequentially, accumulating
   ``(n_k / N) * grad_k`` in float64 into its shared-memory row;
3. the coordinator tree-reduces the rows (fixed association → deterministic
   bits for a given worker count), deposits the result on ``param.grad``
   and steps the optimizer **once**; updated weights broadcast back through
   the shared weights buffer before the next step.

Because micro-shard losses/gradients are combined with exact ``n_k / N``
weights, the aggregate equals single-process full-batch training up to
floating-point association — ``<= 1e-6`` under the float64 policy, asserted
in ``benchmarks/test_bench_parallel.py`` — for models whose per-sample
computation is batch-independent.  Batch-norm layers in *training* mode
compute their statistics per micro-shard (exactly like per-device BN in
standard distributed data parallel); with BN, data-parallel training is
instead bit-for-bit governed by the micro-shard semantics, and parity holds
against the gradient-accumulation fallback (``num_workers=1,
accum_steps=N``) rather than against one monolithic batch.

``accum_steps`` is the small-machine fallback: the same effective batch
(and therefore the same micro-shard decomposition) runs on fewer
processes, trading wall-clock for memory/cores.

Checkpoint/resume (:meth:`save_checkpoint` / :meth:`load_checkpoint`)
bundles model, optimizer and scheduler ``state_dict``\\ s plus the NumPy RNG
and the ``(epoch, batch)`` shard cursor; a killed run resumed from the
checkpoint reproduces the uninterrupted loss sequence exactly (same worker
count) because data order is re-derived from ``DataLoader.set_epoch`` and
the reduction order is deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.trace import Span, get_tracer
from repro.optim import SGD, Adam, CosineAnnealingLR
from repro.parallel.pool import DEFAULT_TIMEOUT_S, WorkerPool
from repro.resilience.errors import WorkerHungError
from repro.training.checkpoint import load_training_state, save_training_state
from repro.training.config import TrainingConfig
from repro.training.trainer import EpochResult, evaluate_accuracy

__all__ = ["DataParallelTrainer", "split_batch"]


def split_batch(data: np.ndarray, labels: np.ndarray,
                num_shards: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Partition one batch into ``num_shards`` contiguous micro-shards.

    Static batches ``(N, C, H, W)`` split along axis 0; event batches
    ``(T, N, C, H, W)`` along axis 1 (the loader yields them time-major).
    Uses ``np.array_split`` — the same partition the shard-aware
    ``DataLoader`` applies — so explicit-batch and epoch training shard
    identically.  Trailing shards may be empty when ``N < num_shards``.
    """
    data = np.asarray(data)
    labels = np.asarray(labels)
    batch_axis = 1 if data.ndim == 5 else 0
    return list(zip(np.array_split(data, num_shards, axis=batch_axis),
                    np.array_split(labels, num_shards)))


class DataParallelTrainer:
    """Drop-in data-parallel counterpart of ``BPTTTrainer``.

    Parameters mirror :class:`~repro.training.trainer.BPTTTrainer`
    (``loss_fn``, ``augment``, ``compile``/``optimize``/``backend``/
    ``dtype``), plus:

    num_workers:
        Worker processes; each replays the compiled plan on its shard.
    accum_steps:
        Sequential micro-shards per worker per step — the
        gradient-accumulation fallback.  ``num_workers=1, accum_steps=4``
        runs the exact micro-shard decomposition of a 4-worker step on one
        process.
    train_dataset:
        Optional; lets :meth:`fit` shard epochs inside the workers (the
        dataset is forked into them, batches never cross a pipe).  Explicit
        :meth:`train_step` calls work without it.
    prefetch:
        Forwarded to the workers' shard loaders (background assembly).
    start_method:
        ``multiprocessing`` start method; the default ``"fork"`` shares the
        model and datasets copy-on-write.
    """

    def __init__(
        self,
        model,
        config: TrainingConfig,
        num_workers: int = 2,
        accum_steps: int = 1,
        loss_fn: Optional[Callable] = None,
        augment: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        compile: bool = True,
        optimize: str = "O1",
        backend: str = "numpy",
        dtype=None,
        train_dataset: Optional[Dataset] = None,
        drop_last: bool = False,
        prefetch: bool = False,
        start_method: str = "fork",
        step_timeout_s: float = DEFAULT_TIMEOUT_S,
        max_step_retries: int = 2,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if accum_steps < 1:
            raise ValueError(f"accum_steps must be >= 1, got {accum_steps}")
        if config.batch_size < num_workers * accum_steps:
            raise ValueError(
                f"batch_size {config.batch_size} cannot feed "
                f"{num_workers} workers x {accum_steps} accumulation steps")
        from repro.snn.loss import mean_output_cross_entropy

        self.model = model
        self.config = config
        self.num_workers = num_workers
        self.accum_steps = accum_steps
        self.loss_fn = loss_fn or mean_output_cross_entropy
        self.augment = augment
        self.compile = bool(compile)
        self.optimize = optimize
        self.backend = backend
        if self.compile and backend != "auto":
            from repro.runtime.backends import get_backend

            get_backend(backend)  # raise early on unknown names
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float32)
        if dtype is not None:
            model.astype(self.dtype)
        self.train_dataset = train_dataset
        self.drop_last = bool(drop_last)
        self.prefetch = bool(prefetch)
        self.start_method = start_method
        #: Watchdog: per-step reply deadline and how many hung-worker
        #: recoveries (kill + respawn + retry from synced weights) to attempt
        #: before giving up with the original :class:`WorkerHungError`.
        self.step_timeout_s = float(step_timeout_s)
        self.max_step_retries = int(max_step_retries)
        self.step_retries = 0

        if config.optimizer.lower() == "adam":
            self.optimizer = Adam(model.parameters(), lr=config.learning_rate,
                                  weight_decay=config.weight_decay)
            self.scheduler = None
        else:
            self.optimizer = SGD(model.parameters(), lr=config.learning_rate,
                                 momentum=config.momentum,
                                 weight_decay=config.weight_decay)
            self.scheduler = CosineAnnealingLR(self.optimizer,
                                               t_max=config.schedule_horizon)
        self.history: List[EpochResult] = []
        #: per-step mean losses in execution order (this process only — not
        #: checkpointed); lets tests compare resumed loss curves exactly.
        self.step_loss_history: List[float] = []
        self._pool: Optional[WorkerPool] = None
        self._cursor: Dict[str, int] = {"epoch": 0, "batch": 0}
        self._allreduce_hist = histogram(
            "train_allreduce_seconds",
            help="Gradient tree-reduce + deposit time per data-parallel step",
            buckets=tuple(1e-5 * 4 ** i for i in range(10)))
        self._util_gauges = [
            gauge("train_worker_utilization",
                  help="Busy fraction of one data-parallel worker",
                  labels={"worker": str(rank)})
            for rank in range(num_workers)
        ]
        self._retry_counter = counter(
            "repro_train_step_retries_total",
            help="Train steps retried after a hung-worker recovery")

    # -- pool lifecycle ----------------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is not None and not self._pool.closed:
            return self._pool
        self._pool = WorkerPool(
            self.model, self.num_workers,
            loss_fn=self.loss_fn,
            timesteps=self.config.timesteps,
            step_mode=self.config.step_mode,
            augment=self.augment,
            compile=self.compile,
            optimize=self.optimize,
            backend=self.backend,
            dtype=self.dtype,
            effective_batch=self.config.batch_size,
            accum_steps=self.accum_steps,
            train_dataset=self.train_dataset,
            batch_size=self.config.batch_size,
            shuffle=True,
            drop_last=self.drop_last,
            prefetch=self.prefetch,
            seed=self.config.seed,
            start_method=self.start_method,
        )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down and release the shared-memory segments."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "DataParallelTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- steps -------------------------------------------------------------------

    def train_step(self, data: np.ndarray, labels: np.ndarray) -> Dict[str, float]:
        """One data-parallel step on an explicit batch (same contract as eager)."""
        labels = np.asarray(labels)
        total_n = int(labels.shape[0])
        shards = split_batch(data, labels, self.num_workers * self.accum_steps)
        pool = self._ensure_pool()
        per_worker = [shards[w * self.accum_steps:(w + 1) * self.accum_steps]
                      for w in range(self.num_workers)]
        return self._drive_step(
            pool, total_n,
            lambda rank: {"cmd": "step", "shards": per_worker[rank],
                          "total_n": total_n})

    def _drive_step(self, pool: WorkerPool, total_n: int,
                    make_msg: Callable[[int], Dict[str, object]],
                    on_retry: Optional[Callable[[], None]] = None,
                    ) -> Dict[str, float]:
        """One step with watchdog recovery: retry after hung-worker respawns.

        The optimizer has not stepped when a hang surfaces (gradients are
        still in the workers' rows), so a retry re-runs the *same* update
        from the same synced weights — recovered runs reproduce the
        fault-free loss curve exactly.  ``on_retry`` restores any per-step
        worker state the retry needs (epoch mode rewinds the shard
        iterators, since surviving workers already consumed their batch).
        """
        attempts = 0
        while True:
            try:
                return self._drive_step_once(pool, total_n, make_msg)
            except WorkerHungError as hung:
                while True:
                    attempts += 1
                    if attempts > self.max_step_retries:
                        pool.close(graceful=False)
                        raise hung
                    tracer = get_tracer()
                    with tracer.span("train.worker_restart", rank=hung.rank,
                                     attempt=attempts):
                        pool.restart_worker(hung.rank)
                        try:
                            pool.resync(timeout=self.step_timeout_s)
                            if on_retry is not None:
                                on_retry()
                        except WorkerHungError as again:
                            hung = again  # another rank hung during recovery
                            continue
                    self.step_retries += 1
                    self._retry_counter.inc()
                    break

    def _drive_step_once(self, pool: WorkerPool, total_n: int,
                         make_msg: Callable[[int], Dict[str, object]],
                         ) -> Dict[str, float]:
        """Broadcast one step command, all-reduce, optimizer update, telemetry."""
        tracer = get_tracer()
        with tracer.span("train.step", compiled=self.compile, parallel=True,
                         workers=self.num_workers, accum_steps=self.accum_steps,
                         batch_size=total_n) as step_span:
            pool.sync_weights()
            for rank in range(pool.num_workers):
                pool.send(rank, make_msg(rank))
            replies = pool.gather(timeout=self.step_timeout_s)
            self._emit_worker_spans(tracer, step_span, replies)

            with tracer.span("train.allreduce", workers=pool.num_workers):
                start = time.perf_counter()
                pool.assign_reduced_gradients()
                self._allreduce_hist.observe(time.perf_counter() - start)
            with tracer.span("train.optimizer"):
                self.optimizer.step()

            for rank, util in enumerate(pool.utilization()):
                self._util_gauges[rank].set(util)
            # Rank-ordered summation: deterministic bits for a fixed pool size.
            loss = 0.0
            for reply in replies:
                loss += reply["loss_scaled"]
            correct = sum(reply["correct"] for reply in replies)
            replayed = all(reply["replayed"] for reply in replies)
            return {"loss": float(loss),
                    "accuracy": correct / max(total_n, 1),
                    "replayed": float(replayed)}

    @staticmethod
    def _emit_worker_spans(tracer, step_span, replies) -> None:
        """Lay the workers' reported busy windows into the coordinator's trace.

        Workers report ``perf_counter`` timestamps; on every supported
        platform that clock is system-wide, so the child spans line up with
        the coordinator's own timeline.
        """
        if not tracer.enabled or not isinstance(step_span, Span):
            return
        for rank, reply in enumerate(replies):
            child = Span("train.worker", parent=step_span,
                         attrs={"rank": rank, "n": reply["n"],
                                "replayed": bool(reply["replayed"])},
                         start_perf=reply["t_start"])
            tracer.finish_span(child, end_perf=reply["t_end"])

    # -- epochs ------------------------------------------------------------------

    def train_epoch(self, epoch: int = 0, start_batch: int = 0,
                    max_batches: Optional[int] = None) -> EpochResult:
        """Train one epoch with worker-side sharded loading.

        Requires ``train_dataset``; the workers assemble their own shard of
        every batch from their forked dataset copies (optionally
        prefetched), so batch data never crosses a pipe.  ``start_batch``
        skips already-consumed batches when resuming mid-epoch;
        ``max_batches`` stops early after that many batches (the cursor
        then stays mid-epoch, the scheduler does not advance, and the
        partial result is not appended to :attr:`history` — checkpoint and
        resume from there).
        """
        if self.train_dataset is None:
            raise ValueError("train_epoch needs the trainer's train_dataset")
        pool = self._ensure_pool()
        self.model.train()
        n = len(self.train_dataset)
        batch_size = self.config.batch_size
        if self.drop_last:
            num_batches = n // batch_size
        else:
            num_batches = (n + batch_size - 1) // batch_size
        stop_at = num_batches if max_batches is None else min(
            num_batches, start_batch + max_batches)
        tracer = get_tracer()
        losses: List[float] = []
        accuracies: List[float] = []
        start = time.perf_counter()
        with tracer.span("train.epoch", epoch=epoch, parallel=True) as epoch_span:
            pool.broadcast({"cmd": "epoch_start", "epoch": epoch,
                            "skip": start_batch})
            pool.gather()
            for step in range(start_batch, stop_at):
                total_n = batch_size if self.drop_last else min(
                    batch_size, n - step * batch_size)
                stats = self._drive_step(
                    pool, total_n,
                    lambda rank: {"cmd": "epoch_step", "total_n": total_n},
                    on_retry=lambda step=step: self._rewind_epoch(
                        pool, epoch, step))
                losses.append(stats["loss"])
                accuracies.append(stats["accuracy"])
                self.step_loss_history.append(stats["loss"])
                self._cursor = {"epoch": epoch, "batch": step + 1}
            pool.broadcast({"cmd": "epoch_end"})
            pool.gather()
            epoch_span.set_attr("batches", len(losses))
        duration = time.perf_counter() - start
        completed = stop_at == num_batches
        result = EpochResult(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            accuracy=float(np.mean(accuracies)) if accuracies else 0.0,
            duration_s=duration,
            learning_rate=self.optimizer.lr,
        )
        if completed:
            if self.scheduler is not None:
                self.scheduler.step()
            self._cursor = {"epoch": epoch + 1, "batch": 0}
            self.history.append(result)
        return result

    def _rewind_epoch(self, pool: WorkerPool, epoch: int, step: int) -> None:
        """Rewind every worker's shard iterators to ``step`` after a recovery.

        The respawned worker holds no iterator at all, and the surviving
        workers already consumed their shard of the aborted batch; an
        ``epoch_start`` re-derives the epoch permutation (seed + epoch) and
        fast-forwards ``step`` batches, so the retried step sees exactly the
        data the aborted one did.
        """
        pool.broadcast({"cmd": "epoch_start", "epoch": epoch, "skip": step})
        pool.gather(timeout=self.step_timeout_s)

    def fit(self, train_dataset: Optional[Dataset] = None,
            epochs: Optional[int] = None, verbose: bool = False) -> List[EpochResult]:
        """Train for ``epochs`` epochs, resuming from the cursor when set.

        After :meth:`load_checkpoint`, the first call continues mid-epoch at
        the stored ``(epoch, batch)`` position.
        """
        if train_dataset is not None:
            if self.train_dataset is not None and train_dataset is not self.train_dataset:
                self.close()  # respawn workers over the new dataset
            self.train_dataset = train_dataset
        epochs = epochs if epochs is not None else self.config.epochs
        epoch = self._cursor["epoch"]
        start_batch = self._cursor["batch"]
        while epoch < epochs:
            result = self.train_epoch(epoch, start_batch=start_batch)
            start_batch = 0
            epoch += 1
            if verbose:  # pragma: no cover - cosmetic
                print(f"epoch {epoch}/{epochs}: loss={result.loss:.4f} "
                      f"train_acc={result.accuracy:.3f} ({result.duration_s:.1f}s)")
        return self.history

    def evaluate(self, dataset: Dataset, batch_size: Optional[int] = None) -> float:
        """Top-1 accuracy on ``dataset`` (coordinator-side, single process)."""
        return evaluate_accuracy(self.model, dataset,
                                 batch_size=batch_size or self.config.batch_size,
                                 timesteps=self.config.timesteps,
                                 step_mode=self.config.step_mode)

    # -- checkpoint / resume -----------------------------------------------------

    def save_checkpoint(self, path: str) -> str:
        """Snapshot model + optimizer + scheduler + RNG + shard cursor."""
        return save_training_state(
            path, self.model, self.optimizer, self.scheduler,
            cursor=dict(self._cursor),
            extra={
                "num_workers": self.num_workers,
                "accum_steps": self.accum_steps,
                "num_shards": self.num_workers * self.accum_steps,
                "effective_batch": self.config.batch_size,
                "seed": self.config.seed,
                "dtype": self.dtype.name,
                "history": list(self.history),
            })

    def load_checkpoint(self, path: str) -> Dict[str, object]:
        """Restore a snapshot; the next :meth:`fit` resumes at its cursor.

        Resume is *elastic*: the worker count may differ from the saving
        run's (replicas hold no state).  The loss curve is bit-identical
        when ``num_workers * accum_steps`` (the micro-shard decomposition)
        and the worker count match the original run, and equal to within
        floating-point association otherwise.
        """
        state = load_training_state(path, self.model, self.optimizer,
                                    self.scheduler)
        self._cursor = {"epoch": int(state["cursor"].get("epoch", 0)),
                        "batch": int(state["cursor"].get("batch", 0))}
        self.history = list(state["extra"].get("history", []))
        if self._pool is not None and not self._pool.closed:
            self._pool.sync_weights()
        return state

    # -- stats -------------------------------------------------------------------

    def runtime_stats(self) -> Optional[List[Optional[Dict[str, object]]]]:
        """Per-worker compiled-runtime accounting (``None`` before any step)."""
        if self._pool is None or self._pool.closed:
            return None
        return self._pool.worker_stats()

    def utilization(self) -> Optional[List[float]]:
        """Per-worker busy fractions since the pool spawned."""
        if self._pool is None or self._pool.closed:
            return None
        return self._pool.utilization()
