"""Shared-memory primitives for data-parallel training.

Two flat buffers connect the coordinator and its worker processes:

* a **weights buffer** — one float64 slot per trainable parameter scalar.
  The coordinator (which owns the optimizer) serialises every parameter
  into it after each update; workers copy it back into their model
  replicas at the start of every step, so the broadcast half of the
  all-reduce is a single shared-memory memcpy per worker.
* a **gradient matrix** — ``num_workers`` rows of the same flat layout,
  always float64 (the "pinned accumulator" precision regardless of the
  training dtype).  Every worker writes its shard's scaled gradient into
  its own row; the coordinator tree-reduces the rows in place
  (:func:`tree_reduce_rows`) and hands row 0 to the optimizer.

Segments are created by the coordinator and attached by workers.  Workers
explicitly unregister their attachment from ``multiprocessing``'s
``resource_tracker`` so exactly one process — the coordinator — owns
unlinking; without this, every worker's tracker would try to clean the
segment up again at exit (the well-known spurious "leaked shared_memory"
warnings) and a dying worker could unlink a segment its siblings still
use.  :meth:`SharedArray.unlink` is idempotent, so crash paths can call it
unconditionally.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["ParamBlock", "SharedArray", "tree_reduce_rows", "segment_name"]


def segment_name(tag: str) -> str:
    """A collision-proof shared-memory segment name (``repro-<tag>-<pid>-<hex>``)."""
    return f"repro-{tag}-{os.getpid()}-{secrets.token_hex(4)}"


#: Owned (created-here) segments that have not been unlinked yet.  The atexit
#: guard below unlinks whatever is left, so a coordinator that dies without
#: reaching ``WorkerPool.close()`` — an unhandled exception, ``sys.exit`` from
#: a signal handler — cannot leak ``/dev/shm`` segments.  A WeakSet so a
#: garbage-collected array (whose ``__del__`` already unlinked) drops out.
_LIVE_OWNED: "weakref.WeakSet[SharedArray]" = weakref.WeakSet()
_GUARD_PID = os.getpid()


@atexit.register
def _unlink_leftover_segments() -> None:  # pragma: no cover - exit path
    # ``fork`` children inherit the registry; only the creating process may
    # unlink, or a dying worker would destroy segments its siblings still use.
    if os.getpid() != _GUARD_PID:
        return
    for seg in list(_LIVE_OWNED):
        try:
            seg.unlink()
        except Exception:  # noqa: BLE001 - best effort at interpreter exit
            pass


class ParamBlock:
    """Flat float64 layout of a model's trainable parameters.

    The block is computed once from ``named_parameters()`` order (which is
    deterministic, depth-first) and shared verbatim between coordinator and
    workers — both sides fork from the same model object, so offsets always
    agree.  All reads/writes cast through float64; float32 values survive
    the round trip exactly.
    """

    def __init__(self, named_params: Iterable[Tuple[str, object]]):
        self.names: List[str] = []
        self.shapes: List[tuple] = []
        self.dtypes: List[np.dtype] = []
        self.offsets: List[int] = []
        total = 0
        for name, param in named_params:
            self.names.append(name)
            self.shapes.append(tuple(param.data.shape))
            self.dtypes.append(np.dtype(param.data.dtype))
            self.offsets.append(total)
            total += int(param.data.size)
        if total == 0:
            raise ValueError("model has no trainable parameters to share")
        self.total = total

    def __len__(self) -> int:
        return len(self.names)

    def write_params(self, flat: np.ndarray, params: Sequence) -> None:
        """Serialise every parameter's ``.data`` into ``flat`` (float64)."""
        for offset, shape, param in zip(self.offsets, self.shapes, params):
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            flat[offset:offset + size] = param.data.ravel()

    def read_params(self, flat: np.ndarray, params: Sequence) -> None:
        """Copy ``flat`` back into every parameter's ``.data`` **in place**.

        In-place (``data[...] = ...``) so compiled plans that captured the
        parameter buffers keep reading the refreshed values.
        """
        for offset, shape, dtype, param in zip(self.offsets, self.shapes,
                                               self.dtypes, params):
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            param.data[...] = flat[offset:offset + size].reshape(shape).astype(
                dtype, copy=False)

    def accumulate_grads(self, row: np.ndarray, params: Sequence,
                         scale: float) -> None:
        """Add ``scale *`` every parameter's ``.grad`` into ``row`` (float64).

        Parameters whose gradient is ``None`` (e.g. frozen layers, or an
        empty shard that never ran backward) contribute nothing.
        """
        for offset, shape, param in zip(self.offsets, self.shapes, params):
            if param.grad is None:
                continue
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            row[offset:offset + size] += param.grad.ravel().astype(np.float64) * scale

    def assign_grads(self, row: np.ndarray, params: Sequence) -> None:
        """Set every parameter's ``.grad`` from the reduced ``row`` (fresh copies)."""
        for offset, shape, dtype, param in zip(self.offsets, self.shapes,
                                               self.dtypes, params):
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            param.grad = row[offset:offset + size].reshape(shape).astype(dtype)

    def describe(self) -> Dict[str, object]:
        return {"parameters": len(self.names), "scalars": self.total}


class SharedArray:
    """A named ``multiprocessing.shared_memory`` segment viewed as one ndarray."""

    def __init__(self, name: str, shape: tuple, dtype, create: bool):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        nbytes = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        self._owner = bool(create)
        if create:
            self._shm = shared_memory.SharedMemory(name=name, create=True,
                                                   size=max(nbytes, 1))
        else:
            # Attach WITHOUT registering with the resource tracker: the
            # coordinator owns cleanup (see the module docstring).  Under
            # ``fork`` the workers share the coordinator's tracker process,
            # so unregistering after the fact would strip the coordinator's
            # own registration and its ``unlink`` would then hit the
            # tracker's cache as an unknown name.  Suppressing the
            # registration instead leaves exactly one owner either way.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            try:
                resource_tracker.register = lambda *a, **k: None
                self._shm = shared_memory.SharedMemory(name=name, create=False)
            finally:
                resource_tracker.register = original_register
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)
        self._closed = False
        if self._owner:
            _LIVE_OWNED.add(self)

    @classmethod
    def create(cls, tag: str, shape: tuple, dtype=np.float64) -> "SharedArray":
        return cls(segment_name(tag), shape, dtype, create=True)

    @classmethod
    def attach(cls, name: str, shape: tuple, dtype=np.float64) -> "SharedArray":
        return cls(name, shape, dtype, create=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.array = None
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent, crash-path safe)."""
        self.close()
        if not self._owner:
            return
        _LIVE_OWNED.discard(self)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.unlink() if self._owner else self.close()
        except Exception:  # noqa: BLE001
            pass


def tree_reduce_rows(matrix: np.ndarray, count: int) -> np.ndarray:
    """Sum rows ``[0, count)`` into row 0 with a fixed binary-tree association.

    Round ``r`` adds row ``i + 2**r`` into row ``i`` for every ``i`` that is a
    multiple of ``2**(r+1)`` — the textbook reduction tree.  The pairing
    depends only on ``count``, so the floating-point association (and hence
    the reduced bits) is deterministic for a given worker count, which is
    what makes checkpoint/resume reproduce a run's loss curve exactly.
    Returns row 0 (a view into ``matrix``).
    """
    stride = 1
    while stride < count:
        for i in range(0, count - stride, 2 * stride):
            matrix[i] += matrix[i + stride]
        stride *= 2
    return matrix[0]
