"""Data-parallel training and parallel evaluation over a process pool.

The package splits into three layers:

* :mod:`repro.parallel.shm` — flat shared-memory parameter/gradient
  buffers and the deterministic tree reduction;
* :mod:`repro.parallel.pool` — the forked worker processes and their
  command protocol;
* :mod:`repro.parallel.trainer` — :class:`DataParallelTrainer`, the
  drop-in data-parallel counterpart of
  :class:`~repro.training.trainer.BPTTTrainer`.
"""

from repro.parallel.pool import WorkerCrashError, WorkerPool
from repro.parallel.shm import ParamBlock, SharedArray, tree_reduce_rows
from repro.parallel.trainer import DataParallelTrainer, split_batch

__all__ = [
    "DataParallelTrainer",
    "ParamBlock",
    "SharedArray",
    "WorkerCrashError",
    "WorkerPool",
    "split_batch",
    "tree_reduce_rows",
]
