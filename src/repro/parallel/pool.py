"""Process pool for data-parallel training and parallel search evaluation.

The pool owns ``num_workers`` forked processes, two shared-memory buffers
(weights + per-worker gradient rows, :mod:`repro.parallel.shm`) and one
duplex pipe per worker.  Workers are *stateless replicas*: they never step
an optimizer — every command that touches the model starts by copying the
coordinator's weights out of shared memory, so the coordinator's parameter
state is always authoritative (which is what makes checkpoint/resume and
elastic worker counts trivial).

Command set (coordinator → worker):

* ``step`` — run forward+backward on explicitly shipped micro-shards,
  write the scaled float64 gradient into this worker's shared row.
* ``epoch_start`` / ``epoch_step`` / ``epoch_end`` — same compute, but the
  worker assembles its micro-shards from its own shard-aware
  :class:`~repro.data.datasets.DataLoader` (``num_shards``/``shard_index``),
  so epoch data never crosses the pipe.
* ``eval_config`` — apply a search-space candidate to the replica (a
  :class:`~repro.search.supernet.TTSupernet`) and score it on the worker's
  validation dataset: the parallel half of ``repro.search``.
* ``stats`` / ``ping`` / ``shutdown`` — bookkeeping.

Failure model: a worker that raises mid-command reports the traceback and
keeps serving (the *coordinator* decides to shut the pool down — see
:class:`WorkerCrashError`); a worker that dies outright is detected by the
pipe poll loop.  Either way :meth:`WorkerPool.close` terminates every
process and unlinks both shared-memory segments, so no orphaned segments
survive a crash (asserted in ``tests/test_parallel.py``).

A worker that *hangs* — alive but not answering — is the one failure a
teardown cannot diagnose, so the reply deadline doubles as a watchdog:
:meth:`WorkerPool.recv` raises a recoverable
:class:`~repro.resilience.errors.WorkerHungError` when the process is still
alive at the deadline, and the supervisor
(:class:`~repro.parallel.trainer.DataParallelTrainer`) kills and respawns
just that rank via :meth:`WorkerPool.restart_worker`, resynchronises the
survivors (:meth:`WorkerPool.resync`), and retries the step from the synced
weights.  Hangs (and crashes) are injectable deterministically through the
``worker.hang`` / ``worker.crash`` fault sites in the worker command loop
(:mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.shm import ParamBlock, SharedArray, tree_reduce_rows
from repro.resilience import faults
from repro.resilience.errors import WorkerHungError

__all__ = ["WorkerPool", "WorkerCrashError", "WorkerHungError"]

#: default seconds the coordinator waits for one worker reply before
#: declaring the pool wedged (shards are laptop-scale; minutes means hung)
DEFAULT_TIMEOUT_S = 120.0


class WorkerCrashError(RuntimeError):
    """A worker raised (or died) mid-command; the pool has been shut down.

    ``rank`` identifies the worker and ``remote_traceback`` carries the
    worker-side traceback text when the worker managed to report one
    (``None`` when the process died without a message).
    """

    def __init__(self, rank: int, message: str,
                 remote_traceback: Optional[str] = None):
        detail = f"worker {rank}: {message}"
        if remote_traceback:
            detail += f"\n--- worker traceback ---\n{remote_traceback}"
        super().__init__(detail)
        self.rank = rank
        self.remote_traceback = remote_traceback


def _worker_main(rank: int, conn, spec: Dict[str, object]) -> None:
    """Entry point of one worker process (see module docstring for commands)."""
    # Workers report timings over the pipe; the coordinator synthesises
    # `train.worker` spans from them.  A forked tracer would otherwise emit
    # detached duplicate trees through inherited exporters.
    from repro.obs.trace import get_tracer

    get_tracer().enabled = False

    # Rebuild the fault injector from the pickled plan rather than inheriting
    # the coordinator's (fork-copied) injector state: a fresh injector starts
    # its visit counters at zero, so worker-side fault schedules are
    # deterministic regardless of how many faults the coordinator already
    # fired before the fork.
    plan = spec.get("fault_plan")
    injector = faults.install(plan) if plan is not None else None

    weights = SharedArray.attach(spec["weights_name"], (spec["total"],))
    grads = SharedArray.attach(spec["grads_name"],
                               (spec["num_workers"], spec["total"]))
    model = spec["model"]
    block: ParamBlock = spec["block"]
    params = [p for p in model.parameters() if p.requires_grad]
    engine = _WorkerEngine(model, spec)
    row = grads.array[rank]
    loaders: Optional[List] = None

    def sync_weights() -> None:
        block.read_params(weights.array, params)

    def run_shards(shards, total_n: int) -> Dict[str, float]:
        """Forward+backward every micro-shard; write the scaled grad row."""
        t_start = time.perf_counter()
        sync_weights()
        row[:] = 0.0
        loss_scaled = 0.0
        correct = 0
        n_local = 0
        replayed = True
        for data, labels in shards:
            n_k = int(np.asarray(labels).shape[0])
            if n_k == 0:
                continue
            loss, shard_correct, shard_replayed = engine.forward_backward(data, labels)
            scale = n_k / total_n
            block.accumulate_grads(row, params, scale)
            loss_scaled += loss * scale
            correct += shard_correct
            n_local += n_k
            replayed = replayed and shard_replayed
        t_end = time.perf_counter()
        return {"loss_scaled": loss_scaled, "correct": correct, "n": n_local,
                "replayed": replayed and n_local > 0,
                "t_start": t_start, "t_end": t_end}

    def make_loaders():
        from repro.data.datasets import DataLoader

        accum = int(spec["accum_steps"])
        num_shards = int(spec["num_workers"]) * accum
        return [
            DataLoader(spec["train_dataset"], batch_size=int(spec["batch_size"]),
                       shuffle=bool(spec["shuffle"]), drop_last=bool(spec["drop_last"]),
                       seed=spec["seed"], num_shards=num_shards,
                       shard_index=rank * accum + i,
                       prefetch=bool(spec["prefetch"]))
            for i in range(accum)
        ]

    iterators: List = []
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # coordinator went away
            break
        cmd = msg.get("cmd")
        if cmd == "shutdown":
            conn.send({"status": "ok"})
            break
        if injector is not None and cmd in ("step", "epoch_step"):
            # Injected crash: die without a word, exactly like a segfault or
            # an OOM kill — the coordinator's liveness poll must catch it.
            action = injector.maybe("worker.crash", rank=rank)
            if action is not None:
                os._exit(int(action.get("exitcode", 17)))
            # Injected hang: stop answering while staying alive — only the
            # reply-deadline watchdog can catch this one.  The sleep sits
            # *before* the batch iterator advances, so a killed-and-retried
            # step never half-consumes this worker's data stream.
            action = injector.maybe("worker.hang", rank=rank)
            if action is not None:
                time.sleep(float(action.get("seconds", 3600.0)))
        try:
            if cmd == "step":
                payload = run_shards(msg["shards"], int(msg["total_n"]))
            elif cmd == "epoch_start":
                if spec.get("train_dataset") is None:
                    raise RuntimeError("pool was created without a train dataset")
                if loaders is None:
                    loaders = make_loaders()
                for loader in loaders:
                    loader.set_epoch(int(msg["epoch"]))
                iterators = [iter(loader) for loader in loaders]
                for _ in range(int(msg.get("skip", 0))):
                    for it in iterators:
                        next(it)
                payload = {"batches": len(loaders[0])}
            elif cmd == "epoch_step":
                payload = run_shards([next(it) for it in iterators],
                                     int(msg["total_n"]))
            elif cmd == "epoch_end":
                iterators = []
                payload = {}
            elif cmd == "eval_config":
                payload = engine.eval_config(sync_weights, msg)
            elif cmd == "stats":
                payload = {"runtime": engine.runtime_stats()}
            elif cmd == "ping":
                payload = {"pong": rank}
            else:
                raise ValueError(f"unknown worker command {cmd!r}")
        except BaseException as exc:  # noqa: BLE001 - report, let coordinator decide
            try:
                conn.send({"status": "error", "error": repr(exc),
                           "traceback": traceback.format_exc()})
            except (OSError, ValueError):
                break
            continue
        payload["status"] = "ok"
        conn.send(payload)

    weights.close()
    grads.close()
    conn.close()


class _WorkerEngine:
    """Per-worker forward/backward engine mirroring ``BPTTTrainer.train_step``.

    Owns (a forked replica of) the model plus an optional compiled
    :class:`~repro.runtime.replay.CompiledTrainStep`; never steps an
    optimizer — gradients are the product, parameter updates arrive through
    the shared weights buffer.
    """

    def __init__(self, model, spec: Dict[str, object]):
        self.model = model
        self.loss_fn = spec["loss_fn"]
        self.augment = spec.get("augment")
        self.timesteps = int(spec["timesteps"])
        self.step_mode = spec.get("step_mode")
        self.val_dataset = spec.get("val_dataset")
        self.dtype = np.dtype(spec["dtype"])
        self._params = [p for p in model.parameters() if p.requires_grad]
        self._compiled = None
        if spec.get("compile"):
            from repro.runtime.replay import CompiledTrainStep

            self._compiled = CompiledTrainStep(
                model, self.loss_fn, step_mode=self.step_mode,
                optimize=spec.get("optimize", "O1"),
                backend=spec.get("backend", "numpy"), dtype=self.dtype)

    def forward_backward(self, data, labels) -> Tuple[float, int, bool]:
        """One micro-shard step; returns ``(mean loss, correct, replayed)``."""
        from repro.snn.encoding import encode_batch

        batch = encode_batch(np.asarray(data, dtype=self.dtype), self.timesteps)
        if batch.dtype != self.dtype:
            batch = batch.astype(self.dtype)
        if self.augment is not None:
            batch = self.augment(batch)
        labels = np.asarray(labels)
        for param in self._params:
            param.zero_grad(set_to_none=True)
        if self._compiled is not None:
            loss, logits_per_step, replayed = self._compiled.run(batch, labels)
            mean_logits = sum(logits_per_step) / len(logits_per_step)
        else:
            outputs = self.model.run_timesteps(batch, step_mode=self.step_mode)
            loss_t = self.loss_fn(outputs, labels)
            loss_t.backward()
            loss = float(loss_t.data)
            mean_logits = sum(o.data for o in outputs) / len(outputs)
            replayed = False
        correct = int((np.argmax(mean_logits, axis=1) == labels).sum())
        return float(loss), correct, bool(replayed)

    def eval_config(self, sync_weights: Callable[[], None],
                    msg: Dict[str, object]) -> Dict[str, object]:
        """Score one search candidate on this worker's validation dataset."""
        from repro.training.trainer import evaluate_accuracy

        if self.val_dataset is None:
            raise RuntimeError("pool was created without a validation dataset")
        t_start = time.perf_counter()
        sync_weights()
        self.model.apply_config(msg["config"])
        accuracy = evaluate_accuracy(
            self.model, self.val_dataset, batch_size=int(msg["batch_size"]),
            timesteps=int(msg["timesteps"]))
        return {"accuracy": float(accuracy), "t_start": t_start,
                "t_end": time.perf_counter()}

    def runtime_stats(self) -> Optional[Dict[str, object]]:
        return self._compiled.runtime_stats() if self._compiled is not None else None


class WorkerPool:
    """Spawn and coordinate ``num_workers`` model-replica processes.

    Parameters mirror :class:`~repro.training.trainer.BPTTTrainer` where
    they overlap; the pool itself is engine-agnostic — the
    :class:`~repro.parallel.trainer.DataParallelTrainer` drives it for
    training, :class:`~repro.search.searcher.Searcher` for candidate
    evaluation.  Workers are forked (``start_method="fork"``), so the model
    and datasets are inherited copy-on-write and never pickled.
    """

    def __init__(
        self,
        model,
        num_workers: int,
        *,
        loss_fn=None,
        timesteps: Optional[int] = None,
        step_mode: Optional[str] = None,
        augment=None,
        compile: bool = False,
        optimize: str = "O1",
        backend: str = "numpy",
        dtype=None,
        effective_batch: int = 1,
        accum_steps: int = 1,
        train_dataset=None,
        val_dataset=None,
        batch_size: Optional[int] = None,
        shuffle: bool = True,
        drop_last: bool = False,
        prefetch: bool = False,
        seed: Optional[int] = 0,
        start_method: str = "fork",
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if accum_steps < 1:
            raise ValueError(f"accum_steps must be >= 1, got {accum_steps}")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have: {multiprocessing.get_all_start_methods()})")
        from repro.snn.loss import mean_output_cross_entropy

        self.model = model
        self.num_workers = num_workers
        self.accum_steps = accum_steps
        self._params = [p for p in model.parameters() if p.requires_grad]
        self.block = ParamBlock(
            (n, p) for n, p in model.named_parameters() if p.requires_grad)
        self.weights = SharedArray.create("dp-weights", (self.block.total,))
        self.grads = SharedArray.create("dp-grads",
                                        (num_workers, self.block.total))
        self._closed = False
        self.busy_seconds = [0.0] * num_workers
        self.started_at = time.perf_counter()

        spec: Dict[str, object] = {
            "model": model,
            "block": self.block,
            "total": self.block.total,
            "num_workers": num_workers,
            "accum_steps": accum_steps,
            "weights_name": self.weights.name,
            "grads_name": self.grads.name,
            "loss_fn": loss_fn or mean_output_cross_entropy,
            "timesteps": timesteps if timesteps is not None
                         else getattr(model, "timesteps", 1),
            "step_mode": step_mode,
            "augment": augment,
            "compile": compile,
            "optimize": optimize,
            "backend": backend,
            "dtype": np.dtype(dtype) if dtype is not None else np.dtype(np.float32),
            "effective_batch": effective_batch,
            "train_dataset": train_dataset,
            "val_dataset": val_dataset,
            "batch_size": batch_size or effective_batch,
            "shuffle": shuffle,
            "drop_last": drop_last,
            "prefetch": prefetch,
            "seed": seed,
            # Workers rebuild a fresh injector from the plan (see
            # ``_worker_main``); ``None`` keeps the zero-cost no-op path.
            "fault_plan": faults.active_plan(),
        }
        self._val_dataset = val_dataset
        self.worker_restarts = 0

        # Kept for the watchdog: ``restart_worker`` respawns a single rank
        # from the same spec without rebuilding the pool.
        self._ctx = multiprocessing.get_context(start_method)
        self._spec = spec
        self._conns = []
        self._procs = []
        try:
            for rank in range(num_workers):
                self._conns.append(None)
                self._procs.append(None)
                self._spawn(rank, spec)
        except BaseException:
            self.close()
            raise

    def _spawn(self, rank: int, spec: Dict[str, object]) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(target=_worker_main, name=f"repro-dp-{rank}",
                                 args=(rank, child_conn, spec), daemon=True)
        proc.start()
        child_conn.close()
        self._conns[rank] = parent_conn
        self._procs[rank] = proc

    # -- messaging ----------------------------------------------------------------

    def send(self, rank: int, msg: Dict[str, object]) -> None:
        try:
            self._conns[rank].send(msg)
        except (OSError, ValueError) as exc:
            self._crash(rank, f"pipe send failed ({exc!r})")

    def broadcast(self, msg: Dict[str, object],
                  per_rank: Optional[Callable[[int], Dict[str, object]]] = None) -> None:
        for rank in range(self.num_workers):
            self.send(rank, dict(msg, **(per_rank(rank) if per_rank else {})))

    def recv(self, rank: int, timeout: float = DEFAULT_TIMEOUT_S) -> Dict[str, object]:
        """Wait for one reply from ``rank``; crash the pool on error/death.

        A *hung* worker — deadline reached while the process is still alive
        — raises :class:`WorkerHungError` **without** tearing the pool down:
        that failure is recoverable by :meth:`restart_worker` + a retry,
        which the driving trainer owns.
        """
        conn, proc = self._conns[rank], self._procs[rank]
        deadline = time.monotonic() + timeout
        while True:
            try:
                if conn.poll(0.05):
                    reply = conn.recv()
                    break
            except (EOFError, OSError):
                self._crash(rank, "worker process died mid-command")
            if not proc.is_alive():
                # Drain any final message the worker flushed before dying.
                try:
                    if conn.poll(0):
                        reply = conn.recv()
                        break
                except (EOFError, OSError):
                    pass
                self._crash(rank, f"worker process exited (code {proc.exitcode})")
            if time.monotonic() > deadline:
                raise WorkerHungError(rank, timeout)
        if reply.get("status") == "error":
            self._crash(rank, reply.get("error", "unknown error"),
                        reply.get("traceback"))
        if "t_start" in reply:
            self.busy_seconds[rank] += reply["t_end"] - reply["t_start"]
        return reply

    def gather(self, timeout: float = DEFAULT_TIMEOUT_S) -> List[Dict[str, object]]:
        """Collect one reply per worker, in rank order."""
        return [self.recv(rank, timeout=timeout) for rank in range(self.num_workers)]

    def map(self, messages: Sequence[Dict[str, object]],
            timeout: float = DEFAULT_TIMEOUT_S) -> List[Dict[str, object]]:
        """Run arbitrary per-item commands across the pool, preserving order.

        Items are handed to workers as they free up (simple greedy
        scheduler); used by the searcher, where candidates are independent
        and of uneven cost.
        """
        results: List[Optional[Dict[str, object]]] = [None] * len(messages)
        pending = list(enumerate(messages))
        inflight: Dict[int, int] = {}  # rank -> item index
        free = list(range(self.num_workers))
        while pending or inflight:
            while pending and free:
                index, msg = pending.pop(0)
                rank = free.pop(0)
                self.send(rank, msg)
                inflight[rank] = index
            # Wait for whichever in-flight worker answers first.
            ready = multiprocessing.connection.wait(
                [self._conns[rank] for rank in inflight], timeout=timeout)
            if not ready:
                self._crash(next(iter(inflight)), f"no reply within {timeout:.0f}s")
            for conn in ready:
                rank = self._conns.index(conn)
                try:
                    results[inflight.pop(rank)] = self.recv(rank, timeout=timeout)
                except WorkerHungError as exc:
                    # map() callers (the searcher) carry no per-item retry
                    # state, so a hang here keeps the fatal-teardown contract.
                    self._crash(exc.rank, f"no reply within {timeout:.0f}s")
                free.append(rank)
        return results  # type: ignore[return-value]

    # -- all-reduce ---------------------------------------------------------------

    def sync_weights(self) -> None:
        """Serialise the coordinator's parameters into the shared weights buffer."""
        self.block.write_params(self.weights.array, self._params)

    def reduce_gradients(self) -> np.ndarray:
        """Tree-reduce every worker's scaled gradient row; returns the flat sum."""
        return tree_reduce_rows(self.grads.array, self.num_workers)

    def assign_reduced_gradients(self) -> None:
        """Reduce and deposit the result on the coordinator's ``param.grad``."""
        self.block.assign_grads(self.reduce_gradients(), self._params)

    # -- watchdog recovery --------------------------------------------------------

    def restart_worker(self, rank: int, timeout: float = 5.0) -> None:
        """Kill and respawn one hung rank; the rest of the pool is untouched.

        The respawned incarnation runs *clean* (no fault plan): the seeded
        fault schedule belongs to the original worker processes, which is
        what makes "inject one hang, recover, finish the run" replay
        identically — a fresh injector in the replacement would re-fire the
        same visit-indexed faults forever.
        """
        proc, conn = self._procs[rank], self._conns[rank]
        proc.terminate()
        proc.join(timeout=timeout)
        if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            proc.kill()
            proc.join(timeout=timeout)
        try:
            conn.close()
        except OSError:
            pass
        self._spawn(rank, dict(self._spec, fault_plan=None))
        self.worker_restarts += 1
        from repro.obs import metrics as _metrics

        _metrics.counter(
            "repro_pool_worker_restarts_total",
            help="Hung pool workers killed and respawned by the watchdog.",
        ).inc()

    def resync(self, timeout: float = DEFAULT_TIMEOUT_S) -> None:
        """Barrier the pool after an aborted step: discard stale replies.

        Workers that were *not* hung may still be computing (or have already
        answered) the aborted step.  A plain pipe drain would race their
        in-flight compute, so the barrier is a ping handshake: every rank is
        pinged and replies are consumed until the pong arrives, which by
        pipe FIFO ordering proves every earlier reply has been discarded.
        """
        self.broadcast({"cmd": "ping"})
        for rank in range(self.num_workers):
            while True:
                reply = self.recv(rank, timeout=timeout)
                if reply.get("pong") == rank:
                    break

    # -- health / stats -----------------------------------------------------------

    def ping(self) -> List[int]:
        self.broadcast({"cmd": "ping"})
        return [reply["pong"] for reply in self.gather()]

    def worker_stats(self) -> List[Optional[Dict[str, object]]]:
        """Per-worker compiled-runtime stats (``None`` rows for eager workers)."""
        self.broadcast({"cmd": "stats"})
        return [reply["runtime"] for reply in self.gather()]

    def utilization(self) -> List[float]:
        """Busy-fraction per worker since the pool started (for the obs gauges)."""
        wall = max(time.perf_counter() - self.started_at, 1e-9)
        return [busy / wall for busy in self.busy_seconds]

    @property
    def segment_names(self) -> Tuple[str, str]:
        return (self.weights.name, self.grads.name)

    # -- lifecycle ----------------------------------------------------------------

    def _crash(self, rank: int, message: str,
               remote_traceback: Optional[str] = None) -> None:
        self.close(graceful=False)
        raise WorkerCrashError(rank, message, remote_traceback)

    def close(self, graceful: bool = True, timeout: float = 5.0) -> None:
        """Stop every worker and unlink both shared-memory segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        conns = [conn for conn in self._conns if conn is not None]
        procs = [proc for proc in self._procs if proc is not None]
        if graceful:
            for conn in conns:
                try:
                    conn.send({"cmd": "shutdown"})
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        self.weights.unlink()
        self.grads.unlink()

    def kill(self) -> None:
        """Hard-stop (terminate without handshake) — the simulated-crash path."""
        self.close(graceful=False)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close(graceful=False, timeout=0.5)
        except Exception:  # noqa: BLE001
            pass
