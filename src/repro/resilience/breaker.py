"""Per-replica circuit breaker: closed / open / half-open on error rate.

The fleet router already reroutes around a *dead* replica; the breaker
covers the worse failure mode — a replica that is alive but failing (native
kernel quarantined into a slow path, intermittent crashes under restart
churn, a poisoned model version).  Tripping the breaker takes the replica
out of the routing set *before* its failures burn through client retries,
and the half-open state re-admits a bounded number of probe requests so a
recovered replica earns its traffic back instead of being slammed with the
full backlog at once.

States
------
``closed``
    Normal routing.  A sliding window of the last ``window`` outcomes is
    kept; when it holds at least ``min_requests`` samples and the error
    fraction reaches ``error_threshold``, the breaker opens.
``open``
    The replica is skipped by the router (the fleet falls back to any
    alive replica if *every* breaker is open — availability beats purity).
    After ``open_duration_s`` the next :meth:`allow` transitions to
    half-open.
``half-open``
    Up to ``half_open_probes`` concurrent probe requests are admitted.
    ``half_open_probes`` consecutive successes close the breaker (window
    cleared); any failure re-opens it and restarts the cool-down clock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Stable numeric encoding for the per-slot breaker-state gauge.
STATE_CODES = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}


class CircuitBreaker:
    def __init__(self, window: int = 20, min_requests: int = 5,
                 error_threshold: float = 0.5, open_duration_s: float = 1.0,
                 half_open_probes: int = 2,
                 time_fn: Callable[[], float] = time.monotonic):
        if window < 1 or min_requests < 1 or half_open_probes < 1:
            raise ValueError("window, min_requests and half_open_probes "
                             "must be >= 1")
        self.window = int(window)
        self.min_requests = int(min_requests)
        self.error_threshold = float(error_threshold)
        self.open_duration_s = float(open_duration_s)
        self.half_open_probes = int(half_open_probes)
        self._now = time_fn
        self._lock = threading.Lock()
        self._outcomes: deque = deque(maxlen=self.window)
        self._state = CLOSED
        self._opened_at: Optional[float] = None
        self._probes_inflight = 0
        self._probe_successes = 0
        self._transitions = 0

    # -- router side --------------------------------------------------------------

    def allow(self) -> bool:
        """May the router dispatch to this replica right now?

        In the open state this is also where the cool-down expiry is
        noticed (the breaker has no timer thread); in half-open it admits
        at most ``half_open_probes`` concurrent probes.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._now() - self._opened_at >= self.open_duration_s:
                    self._transition(HALF_OPEN)
                else:
                    return False
            # half-open: bounded concurrent probes
            if self._probes_inflight >= self.half_open_probes:
                return False
            self._probes_inflight += 1
            return True

    # -- outcome feed -------------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._outcomes.clear()
                    self._transition(CLOSED)
                return
            self._outcomes.append(True)
            self._maybe_trip()

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._trip()
                return
            self._outcomes.append(False)
            self._maybe_trip()

    # -- internals ----------------------------------------------------------------

    def _maybe_trip(self) -> None:
        if self._state != CLOSED or len(self._outcomes) < self.min_requests:
            return
        errors = sum(1 for ok in self._outcomes if not ok)
        if errors / len(self._outcomes) >= self.error_threshold:
            self._trip()

    def _trip(self) -> None:
        self._opened_at = self._now()
        self._transition(OPEN)

    def _transition(self, state: str) -> None:
        if state != self._state:
            self._transitions += 1
        self._state = state
        self._probes_inflight = 0
        self._probe_successes = 0

    # -- introspection ------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            # Surface cool-down expiry to readers without requiring traffic.
            if (self._state == OPEN
                    and self._now() - self._opened_at >= self.open_duration_s):
                self._transition(HALF_OPEN)
            return self._state

    def state_code(self) -> float:
        return STATE_CODES[self.state]

    def snapshot(self) -> dict:
        state = self.state
        with self._lock:
            outcomes = list(self._outcomes)
            return {
                "state": state,
                "window": len(outcomes),
                "errors": sum(1 for ok in outcomes if not ok),
                "transitions": self._transitions,
                "probes_inflight": self._probes_inflight,
            }
