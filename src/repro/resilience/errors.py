"""Typed failure taxonomy shared by the hardened subsystems.

Every recovery path in the stack resolves to one of these types (or to an
existing typed error such as :class:`repro.fleet.errors.Overloaded`), so a
caller — or a chaos test — can always distinguish "the system answered",
"the system refused with a reason", and "the system is broken".  Keeping
the classes here, at the bottom of the import graph (this module depends on
nothing), lets ``runtime``, ``training``, ``parallel`` and ``fleet`` all
raise them without cycles.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "NumericFault",
    "CheckpointCorruptError",
    "WorkerHungError",
]


class ResilienceError(RuntimeError):
    """Base class for typed failures raised by the hardening layer."""


class NumericFault(ResilienceError):
    """A non-finite value surfaced from a guarded compiled-plan node.

    Carries enough context to quarantine the offending kernel: the decorated
    node label (``op@backend``), the node's schedule position inside the
    plan, and whether the value came out of a *native* kernel (quarantinable
    to the numpy reference path) or the reference path itself (a genuine
    numerical problem in the model or data).
    """

    def __init__(self, label: str, position: int, native: bool,
                 detail: str = ""):
        self.label = label
        self.position = int(position)
        self.native = bool(native)
        origin = "native kernel" if native else "reference kernel"
        message = f"non-finite output from {origin} '{label}' (node {position})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class CheckpointCorruptError(ResilienceError):
    """A checkpoint file failed its integrity check (checksum/format)."""

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"corrupt checkpoint {path}: {reason}")


class WorkerHungError(ResilienceError):
    """A pool worker missed its reply deadline but its process is alive.

    Unlike :class:`repro.parallel.pool.WorkerCrashError` (process died or
    reported an exception — the pool is torn down), a hang is *recoverable*:
    the coordinator still owns the shared-memory segments and every other
    worker, so the supervisor can kill and respawn just the hung rank and
    retry the step from the synced weights.
    """

    def __init__(self, rank: int, timeout_s: float):
        self.rank = int(rank)
        self.timeout_s = float(timeout_s)
        super().__init__(
            f"worker {rank} missed its reply deadline ({timeout_s:.1f}s) "
            f"but is still alive")
