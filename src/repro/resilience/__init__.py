"""Deterministic fault injection and the failure hardening it drives.

Three pieces:

* :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` /
  :class:`FaultInjector` pair with zero-cost no-op sites when no plan is
  installed (the :mod:`repro.obs` tracing pattern), wired into the worker
  pool, fleet replicas, compiled runtime, checkpoints, data loader and
  micro-batcher;
* :mod:`repro.resilience.breaker` — the per-replica
  :class:`CircuitBreaker` (closed / open / half-open on error rate) that
  feeds the fleet router and its ``health_report()`` readiness probe;
* :mod:`repro.resilience.errors` — the typed failure taxonomy
  (:class:`NumericFault`, :class:`CheckpointCorruptError`,
  :class:`WorkerHungError`) the hardened paths raise.

The hardening itself lives where the failures live: the hung-worker
watchdog in :mod:`repro.parallel`, durable checksummed checkpoints in
:mod:`repro.training.checkpoint`, numeric guards + kernel quarantine in
:mod:`repro.runtime`, and breaker-aware routing in :mod:`repro.fleet`.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.errors import (CheckpointCorruptError, NumericFault,
                                     ResilienceError, WorkerHungError)
from repro.resilience.faults import (FaultInjector, FaultPlan, FaultSpec,
                                     active_plan, get_injector, inject,
                                     install, uninstall)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "install",
    "uninstall",
    "get_injector",
    "active_plan",
    "inject",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ResilienceError",
    "NumericFault",
    "CheckpointCorruptError",
    "WorkerHungError",
]
