"""Deterministic, seed-driven fault injection.

The framework mirrors the :mod:`repro.obs` tracing design: when no plan is
installed the whole layer costs one module-global read per *site* visit
(``get_injector()`` returning ``None``), so production code keeps its fault
sites compiled in permanently — exactly like tracer spans — and chaos tests
flip them on by installing a :class:`FaultPlan`.

Determinism is the point.  Every :class:`FaultSpec` owns an independent RNG
stream derived from ``SeedSequence(plan.seed, spawn_key=(spec_index,))`` and
its own visit counter, so the *n*-th matching visit of a site fires (or
not) identically on every replay of the same plan — across processes too:
pool workers re-install a fresh injector from the pickled plan, so their
counters start from zero deterministically rather than inheriting whatever
state the coordinator's injector had accumulated before the fork.

Registered sites (the strings passed to :meth:`FaultInjector.maybe`):

===================  ==========================================  =======================
site                 where                                        action params
===================  ==========================================  =======================
``worker.crash``     ``parallel/pool.py`` worker loop             ``rank``
``worker.hang``      ``parallel/pool.py`` worker loop             ``rank``, ``seconds``
``replica.crash``    ``fleet/replica.py`` fused forward           ``replica`` (substring)
``replica.slow``     ``fleet/replica.py`` fused forward           ``replica``, ``seconds``
``runtime.nan``      ``runtime/planner.py`` guarded replay        ``value`` (nan/inf)
``checkpoint.corrupt``  ``training/checkpoint.py`` save path      ``mode`` (truncate/bitflip/partial)
``data.prefetch``    ``data/datasets.py`` prefetch worker         —
``batcher.stall``    ``serve/batcher.py`` batch processing        ``seconds``
===================  ==========================================  =======================

Every fire is observable: it increments the
``repro_faults_injected_total{site=...}`` counter, adds a ``fault.injected``
event to the current tracing span (when tracing is enabled), and is appended
to the injector's :meth:`~FaultInjector.fired` log.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs.trace import event as _span_event

__all__ = ["FaultSpec", "FaultPlan", "FaultInjector", "install", "uninstall",
           "get_injector", "active_plan", "inject"]

#: Keys a call site passes as *context* (matched against the spec) rather
#: than read back as action parameters.
_CONTEXT_KEYS = frozenset({"rank", "replica", "model", "epoch", "step"})


class FaultSpec:
    """One named fault: where it strikes, when, and what it does.

    Parameters
    ----------
    site:
        Registered site name (see the module table).
    at:
        Zero-based *matching-visit* indices at which to fire (int or
        sequence).  ``at=2`` fires on the third visit of the site whose
        context matches; ``at=(0, 3)`` fires twice.  Mutually exclusive
        with ``probability``.
    probability:
        Bernoulli fire probability per matching visit, drawn from the
        spec's own seeded stream.  Bounded by ``max_fires``.
    max_fires:
        Upper bound on total fires.  Defaults to ``len(at)`` when ``at``
        is given, else 1; pass ``None`` for unlimited (probability mode).
    params:
        Mixed match-context and action parameters.  Keys in
        ``{rank, replica, model, epoch, step}`` constrain *matching*
        (ints by equality, strings by substring); everything else
        (``seconds``, ``mode``, ``value``, ...) is handed back to the
        call site when the fault fires.
    """

    def __init__(self, site: str, at=None, probability: Optional[float] = None,
                 max_fires: Optional[int] = -1, **params):
        if at is not None and probability is not None:
            raise ValueError("FaultSpec takes at= or probability=, not both")
        self.site = str(site)
        self.at: Optional[Tuple[int, ...]] = None
        if at is not None:
            self.at = tuple(int(v) for v in (at if isinstance(at, (tuple, list, range)) else (at,)))
        self.probability = None if probability is None else float(probability)
        if max_fires == -1:  # sentinel: derive the default
            max_fires = len(self.at) if self.at is not None else 1
        self.max_fires = None if max_fires is None else int(max_fires)
        self.match = {k: v for k, v in params.items() if k in _CONTEXT_KEYS}
        self.action = {k: v for k, v in params.items() if k not in _CONTEXT_KEYS}

    def matches(self, context: Dict[str, object]) -> bool:
        for key, want in self.match.items():
            if key not in context:
                return False
            have = context[key]
            if isinstance(want, str):
                if want not in str(have):
                    return False
            elif have != want:
                return False
        return True

    def describe(self) -> dict:
        return {
            "site": self.site,
            "at": self.at,
            "probability": self.probability,
            "max_fires": self.max_fires,
            "match": dict(self.match),
            "action": dict(self.action),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSpec({self.describe()!r})"


class FaultPlan:
    """A seeded, immutable schedule of faults.

    The plan is plain data (picklable), so the coordinator ships it to pool
    workers inside the worker spec and each process rebuilds an identical
    :class:`FaultInjector` from it.
    """

    def __init__(self, seed: int = 0, faults: Sequence[FaultSpec] = ()):
        self.seed = int(seed)
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)

    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.site for spec in self.faults}))

    def describe(self) -> dict:
        return {"seed": self.seed,
                "faults": [spec.describe() for spec in self.faults]}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, faults={len(self.faults)})"


class _SpecState:
    __slots__ = ("spec", "visits", "fires", "rng")

    def __init__(self, spec: FaultSpec, plan_seed: int, index: int):
        self.spec = spec
        self.visits = 0
        self.fires = 0
        self.rng = np.random.default_rng(
            np.random.SeedSequence(plan_seed, spawn_key=(index,)))


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at registered sites, deterministically."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._by_site: Dict[str, List[_SpecState]] = {}
        for index, spec in enumerate(plan.faults):
            self._by_site.setdefault(spec.site, []).append(
                _SpecState(spec, plan.seed, index))
        self._fired: List[dict] = []
        self._counters: Dict[str, object] = {}

    # -- the hot call -------------------------------------------------------------

    def maybe(self, site: str, **context) -> Optional[dict]:
        """Return the action params if a fault fires at ``site``, else ``None``.

        A site with no spec costs one dict lookup.  Visit counters advance
        only on *matching* visits, so one plan drives the same schedule no
        matter how many unrelated models/workers share the process.
        """
        states = self._by_site.get(site)
        if states is None:
            return None
        with self._lock:
            for state in states:
                spec = state.spec
                if not spec.matches(context):
                    continue
                visit = state.visits
                state.visits += 1
                if spec.max_fires is not None and state.fires >= spec.max_fires:
                    continue
                if spec.at is not None:
                    fire = visit in spec.at
                elif spec.probability is not None:
                    fire = bool(state.rng.random() < spec.probability)
                else:
                    fire = True
                if not fire:
                    continue
                state.fires += 1
                record = {"site": site, "visit": visit,
                          "context": dict(context),
                          "action": dict(spec.action)}
                self._fired.append(record)
                self._observe(site, context)
                return dict(spec.action)
        return None

    # -- observability ------------------------------------------------------------

    def _observe(self, site: str, context: Dict[str, object]) -> None:
        counter = self._counters.get(site)
        if counter is None:
            counter = _metrics.counter(
                "repro_faults_injected_total",
                help="Faults fired by the active FaultPlan, by site.",
                labels={"site": site})
            self._counters[site] = counter
        counter.inc()
        _span_event("fault.injected", site=site,
                    **{k: v for k, v in context.items()
                       if isinstance(v, (str, int, float, bool))})

    def fired(self, site: Optional[str] = None) -> List[dict]:
        """The fire log (copies), optionally filtered by site."""
        with self._lock:
            log = list(self._fired)
        if site is not None:
            log = [entry for entry in log if entry["site"] == site]
        return log

    def fire_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.fired():
            counts[entry["site"]] = counts.get(entry["site"], 0) + 1
        return counts


# -- process-global installation ------------------------------------------------

_ACTIVE: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide and return its injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def uninstall() -> None:
    """Remove the active plan; every site reverts to the no-op fast path."""
    global _ACTIVE
    _ACTIVE = None


def get_injector() -> Optional[FaultInjector]:
    """The active injector, or ``None`` — the one check every site pays."""
    return _ACTIVE


def active_plan() -> Optional[FaultPlan]:
    injector = _ACTIVE
    return None if injector is None else injector.plan


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Scoped installation for tests: install on entry, uninstall on exit."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()
