#!/usr/bin/env python
"""Benchmark regression gate: compare a fresh BENCH_runtime.json to a baseline.

The benchmark suite (``pytest benchmarks/ -q``) writes its headline numbers
to ``benchmarks/BENCH_runtime.json``.  This tool diffs a freshly generated
copy of that file against a committed (or otherwise trusted) baseline and
exits non-zero when a metric regressed by more than ``--threshold`` (default
20%), so CI can fail a change that quietly slows the runtime down.

Two metric families are compared, chosen by key name:

* **higher-is-better ratios** — keys containing ``speedup`` or ``qps``.
  These are relative quantities (compiled vs eager, native vs NumPy), so
  they transfer across machines; a fresh value below
  ``baseline * (1 - threshold)`` is a regression.  Always compared.
* **lower-is-better absolutes** — keys ending in ``_ms`` or ``_s`` (p50
  latency, step time...).  Wall-clock numbers only mean something when both
  files come from the same machine, so they are compared **only** without
  ``--ratios-only``; a fresh value above ``baseline * (1 + threshold)`` is
  a regression.

Typical use::

    # same machine: full gate, catches >20% p50 latency regressions
    python tools/bench_check.py --baseline /tmp/baseline.json

    # CI runner vs committed snapshot: machine-independent ratios only
    python tools/bench_check.py --baseline benchmarks/BENCH_baseline.json \
        --ratios-only

    # gate several fresh sinks at once (``--fresh`` is repeatable; the
    # flattened metric maps are merged before comparison)
    python tools/bench_check.py --baseline benchmarks/BENCH_baseline.json \
        --fresh benchmarks/BENCH_runtime.json \
        --fresh benchmarks/BENCH_parallel.json --ratios-only

Metrics present in only one file are reported but never fail the gate
(benchmarks are allowed to grow / be renamed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, Tuple

_DEFAULT_FRESH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              os.pardir, "benchmarks", "BENCH_runtime.json")

#: substrings marking a higher-is-better relative metric
_RATIO_MARKERS = ("speedup", "qps")
#: suffixes marking a lower-is-better wall-clock metric
_ABSOLUTE_SUFFIXES = ("_ms", "_s")


def flatten(tree: dict, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf of a JSON tree."""
    for key in sorted(tree):
        value = tree[key]
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            yield from flatten(value, path)
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            yield path, float(value)


def classify(path: str) -> str:
    """``"ratio"``, ``"absolute"`` or ``"ignore"`` for one metric path."""
    leaf = path.rsplit(".", 1)[-1]
    if any(marker in leaf for marker in _RATIO_MARKERS):
        return "ratio"
    if any(leaf.endswith(suffix) for suffix in _ABSOLUTE_SUFFIXES):
        return "absolute"
    return "ignore"


def compare(baseline: Dict[str, float], fresh: Dict[str, float],
            threshold: float, ratios_only: bool) -> Tuple[list, list]:
    """Return ``(regressions, notes)`` line lists for the two metric maps."""
    regressions, notes = [], []
    for path, base in sorted(baseline.items()):
        kind = classify(path)
        if kind == "ignore":
            continue
        if path not in fresh:
            notes.append(f"  missing in fresh run: {path}")
            continue
        new = fresh[path]
        if base <= 0:
            continue
        if kind == "ratio":
            floor = base * (1.0 - threshold)
            if new < floor:
                regressions.append(
                    f"  {path}: {base:.3f} -> {new:.3f} "
                    f"({100 * (new / base - 1):+.1f}%, floor {floor:.3f})")
        elif not ratios_only:
            ceiling = base * (1.0 + threshold)
            if new > ceiling:
                regressions.append(
                    f"  {path}: {base:.3f} -> {new:.3f} "
                    f"({100 * (new / base - 1):+.1f}%, ceiling {ceiling:.3f})")
    for path in sorted(set(fresh) - set(baseline)):
        if classify(path) != "ignore":
            notes.append(f"  new metric (no baseline): {path}")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="trusted BENCH_runtime.json to compare against")
    parser.add_argument("--fresh", action="append", default=None,
                        help="freshly generated BENCH_*.json; repeatable, the "
                             "flattened metric maps are merged (default: "
                             "benchmarks/BENCH_runtime.json)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="fractional regression allowed per metric "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--ratios-only", action="store_true",
                        help="skip wall-clock (_ms/_s) metrics; use when the "
                             "baseline came from a different machine")
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")

    with open(args.baseline) as handle:
        baseline = dict(flatten(json.load(handle)))
    fresh: Dict[str, float] = {}
    for fresh_path in args.fresh or [os.path.normpath(_DEFAULT_FRESH)]:
        with open(fresh_path) as handle:
            fresh.update(flatten(json.load(handle)))

    regressions, notes = compare(baseline, fresh, args.threshold, args.ratios_only)
    mode = "ratios only" if args.ratios_only else "ratios + wall-clock"
    compared = sum(1 for p in baseline if classify(p) != "ignore" and p in fresh)
    print(f"bench_check: {compared} metrics compared ({mode}, "
          f"threshold {args.threshold:.0%})")
    for line in notes:
        print(line)
    if regressions:
        print(f"REGRESSIONS ({len(regressions)}):")
        for line in regressions:
            print(line)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
