"""Tests for the ``repro.fleet`` multi-replica serving fleet.

Covers the full subsystem:

* :class:`AdmissionQueue` — priority ordering, bounded capacity with typed
  ``Overloaded`` backpressure, crash-reroute requeue;
* :class:`CanaryRollout` / :class:`ShadowRollout` — deterministic credit
  split and the promote/rollback gate, pure-unit and end-to-end;
* :class:`FleetServer` — burst correctness vs a direct engine, deadline and
  overload shedding with typed errors, crash rerouting plus supervised
  restart (thread and fork replicas), rollout under live traffic;
* :class:`StreamingSession` — chunked persistent-membrane inference equal
  to the one-shot fixed-``T`` forward, replica affinity, crash re-pinning
  and idle eviction;
* observability — span trees and the fleet's metrics-registry exports.

Tag models (all weights zero, classifier bias set to a known constant) make
logits *exactly* the bias vector, so version-identity assertions are exact
rather than statistical.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.fleet import (
    AdmissionQueue,
    CanaryRollout,
    DeadlineExceeded,
    FleetError,
    FleetRequest,
    FleetServer,
    Overloaded,
    ReplicaCrashed,
    SessionClosed,
    ShadowRollout,
)
from repro.models.vgg import spiking_vgg9
from repro.obs.metrics import default_registry
from repro.obs.trace import get_tracer
from repro.serve.batcher import BatcherClosed
from repro.serve.engine import InferenceEngine

TIMESTEPS = 2
SAMPLE_SHAPE = (3, 10, 10)
NUM_CLASSES = 4

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Leave the process-wide tracer exactly as we found it (disabled)."""
    tracer = get_tracer()
    yield
    tracer.enabled = False
    tracer.set_exporters(())
    tracer.flight = None


def _tiny_model(seed: int = 0, timesteps: int = TIMESTEPS):
    return spiking_vgg9(num_classes=NUM_CLASSES, in_channels=3,
                        timesteps=timesteps, width_scale=0.08,
                        rng=np.random.default_rng(seed))


def _tag_model(tag: float, timesteps: int = TIMESTEPS):
    """All-zero weights + constant classifier bias: logits are exactly [tag]*C."""
    model = _tiny_model(0, timesteps)
    for param in model.parameters():
        param.data[:] = 0.0
    model.classifier.bias.data[:] = np.float32(tag)
    return model


def _samples(count: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((count,) + SAMPLE_SHAPE).astype(np.float32)


def _request(value: float = 0.0, priority: int = 0) -> FleetRequest:
    return FleetRequest(np.full(SAMPLE_SHAPE, np.float32(value)), Future(),
                        priority=priority)


class TestAdmissionQueue:
    def test_priority_ordering_fifo_within_level(self):
        queue = AdmissionQueue(capacity=8)
        low1, low2 = _request(1.0, 0), _request(2.0, 0)
        high = _request(3.0, 5)
        queue.put(low1)
        queue.put(low2)
        queue.put(high)
        assert queue.get() is high
        assert queue.get() is low1
        assert queue.get() is low2
        assert queue.get(timeout=0.01) is None

    def test_overload_is_typed_and_carries_retry_hint(self):
        queue = AdmissionQueue(capacity=2)
        queue.put(_request())
        queue.put(_request())
        with pytest.raises(Overloaded) as excinfo:
            queue.put(_request())
        assert isinstance(excinfo.value, FleetError)
        assert excinfo.value.retry_after_s > 0
        assert queue.depth == 2

    def test_requeue_bypasses_capacity(self):
        queue = AdmissionQueue(capacity=1)
        queue.put(_request())
        rerouted = _request()
        assert queue.requeue(rerouted)  # full, but admitted work stays admitted
        assert queue.depth == 2
        queue.close()
        assert not queue.requeue(_request())
        with pytest.raises(Overloaded):
            queue.put(_request())

    def test_retry_hint_tracks_service_rate(self):
        queue = AdmissionQueue(capacity=4)
        for _ in range(4):
            queue.put(_request())
        slow_before = queue.retry_after()
        for _ in range(16):
            queue.note_served(2.0)
        assert queue.retry_after() > slow_before


class TestRolloutUnits:
    def test_canary_credit_split_is_deterministic(self):
        rollout = CanaryRollout(version=2, fraction=0.25, min_requests=100)
        arms = [rollout.choose_arm() for _ in range(12)]
        assert arms.count("canary") == 3
        # Exactly every 4th request canaries — no sampling noise.
        assert all(arm == "canary" for arm in arms[3::4])

    def test_gate_promotes_healthy_candidate(self):
        rollout = CanaryRollout(version=2, fraction=0.5, min_requests=3)
        decision = None
        for _ in range(3):
            assert rollout.record("baseline", 0.01, False) is None
        for _ in range(3):
            decision = rollout.record("canary", 0.01, False) or decision
        assert decision == "promote"
        assert rollout.decision == "promote"
        # The gate fires exactly once.
        assert rollout.record("canary", 0.01, False) is None

    def test_gate_rolls_back_on_error_rate(self):
        rollout = CanaryRollout(version=2, fraction=0.5, min_requests=3,
                                max_error_rate=0.2)
        decision = None
        for _ in range(3):
            decision = rollout.record("canary", None, True) or decision
        assert decision == "rollback"

    def test_gate_rolls_back_on_latency_regression(self):
        rollout = CanaryRollout(version=2, fraction=0.5, min_requests=4,
                                max_p99_ratio=2.0)
        for _ in range(4):
            rollout.record("baseline", 0.01, False)
        decision = None
        for _ in range(4):
            decision = rollout.record("canary", 0.1, False) or decision
        assert decision == "rollback"

    def test_shadow_tracks_divergence(self):
        rollout = ShadowRollout(version=3, tolerance=1e-5)
        rollout.record(np.zeros(4), np.zeros(4))
        assert rollout.clean
        rollout.record(np.zeros(4), np.full(4, 0.5))
        assert not rollout.clean
        report = rollout.report()
        assert report["compared"] == 2
        assert report["mismatches"] == 1
        assert report["max_abs_diff"] == pytest.approx(0.5)
        rollout.record(np.zeros(4), None, shadow_error=True)
        assert rollout.report()["shadow_errors"] == 1


class TestFleetServing:
    def test_burst_matches_direct_engine(self):
        model = _tiny_model()
        samples = _samples(16)
        direct = InferenceEngine(model).infer(samples)
        with FleetServer(replicas=2, max_batch_size=4, max_wait_ms=1.0) as fleet:
            fleet.register("vgg", model, warmup_sample=samples[0])
            futures = [fleet.submit("vgg", sample) for sample in samples]
            rows = np.stack([future.result(timeout=60) for future in futures])
        np.testing.assert_allclose(rows, direct, atol=1e-6)

    def test_expired_deadline_fails_typed(self):
        with FleetServer(replicas=1, max_wait_ms=1.0) as fleet:
            fleet.register("vgg", _tag_model(1.0))
            future = fleet.submit("vgg", _samples(1)[0], deadline_s=-0.1)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10)
            assert fleet._entry("vgg").metrics["shed_deadline"].value == 1

    def test_overload_sheds_typed_and_admitted_requests_complete(self, monkeypatch):
        original = FleetServer._dispatch

        def slow_dispatch(self, entry, request):
            time.sleep(0.03)
            original(self, entry, request)

        monkeypatch.setattr(FleetServer, "_dispatch", slow_dispatch)
        samples = _samples(30)
        with FleetServer(replicas=1, max_wait_ms=1.0, queue_capacity=3) as fleet:
            fleet.register("vgg", _tag_model(1.0),
                           warmup_sample=samples[0])
            admitted, shed = [], 0
            for sample in samples:
                try:
                    admitted.append(fleet.submit("vgg", sample))
                except Overloaded as exc:
                    assert exc.retry_after_s > 0
                    shed += 1
            assert shed > 0, "30 instant submissions must overflow capacity 3"
            for future in admitted:
                np.testing.assert_allclose(future.result(timeout=60),
                                           np.ones(NUM_CLASSES), atol=1e-6)
            assert fleet._entry("vgg").metrics["shed_overloaded"].value == shed

    def test_inflight_throttle_makes_real_bursts_shed(self):
        """No patching: the in-flight throttle keeps the bounded admission
        queue engaged, so a faster-than-service burst sheds at the door."""
        samples = _samples(60)
        with FleetServer(replicas=1, max_batch_size=2, max_wait_ms=1.0,
                         queue_capacity=2, max_inflight_per_replica=2) as fleet:
            fleet.register("vgg", _tag_model(2.0), warmup_sample=samples[0])
            admitted, shed = [], 0
            for sample in samples:
                try:
                    admitted.append(fleet.submit("vgg", sample))
                except Overloaded:
                    shed += 1
            assert shed > 0, ("a 60-request instant burst against capacity 2 "
                              "+ 2 in-flight must shed")
            for future in admitted:
                np.testing.assert_allclose(future.result(timeout=60),
                                           np.full(NUM_CLASSES, 2.0), atol=1e-6)

    def test_replica_crash_reroutes_and_restarts(self):
        samples = _samples(12)
        with FleetServer(replicas=2, max_batch_size=2, max_wait_ms=5.0,
                         restart_backoff_s=0.05) as fleet:
            fleet.register("vgg", _tag_model(3.0), warmup_sample=samples[0])
            entry = fleet._entry("vgg")
            futures = [fleet.submit("vgg", sample) for sample in samples[:6]]
            entry.group.slots[0].replica.kill()
            futures += [fleet.submit("vgg", sample) for sample in samples[6:]]
            # No request is lost without a typed error: every future either
            # answers or fails with a fleet-typed exception.
            for future in futures:
                try:
                    row = future.result(timeout=60)
                except (FleetError, BatcherClosed):
                    continue
                np.testing.assert_allclose(row, np.full(NUM_CLASSES, 3.0),
                                           atol=1e-6)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if entry.group.slots[0].replica.alive:
                    break
                time.sleep(0.02)
            assert entry.group.slots[0].replica.alive, "replica never restarted"
            assert entry.group.slots[0].generation == 1
            assert entry.metrics["restarts"].value == 1
            # The restarted replica serves again.
            np.testing.assert_allclose(
                fleet.submit("vgg", samples[0]).result(timeout=60),
                np.full(NUM_CLASSES, 3.0), atol=1e-6)

    def test_no_replicas_left_fails_typed(self):
        with FleetServer(replicas=1, max_wait_ms=1.0, max_restarts=0) as fleet:
            fleet.register("vgg", _tag_model(1.0))
            fleet._entry("vgg").group.slots[0].replica.kill()
            future = fleet.submit("vgg", _samples(1)[0])
            with pytest.raises(ReplicaCrashed):
                future.result(timeout=10)

    def test_unknown_model_and_bad_shapes(self):
        with FleetServer(replicas=1) as fleet:
            fleet.register("vgg", _tag_model(1.0))
            with pytest.raises(KeyError):
                fleet.submit("nope", _samples(1)[0])
            with pytest.raises(ValueError):
                fleet.submit("vgg", np.zeros((2,) + SAMPLE_SHAPE, np.float32))

    @pytest.mark.skipif(not _FORK_AVAILABLE, reason="fork start method unavailable")
    def test_process_replicas_serve_and_survive_a_kill(self):
        model = _tiny_model()
        samples = _samples(8)
        direct = InferenceEngine(model).infer(samples)
        with FleetServer(replicas=2, replica_kind="process", max_batch_size=4,
                         max_wait_ms=2.0, restart_backoff_s=0.05) as fleet:
            fleet.register("vgg", model)
            futures = [fleet.submit("vgg", sample) for sample in samples]
            rows = np.stack([future.result(timeout=120) for future in futures])
            np.testing.assert_allclose(rows, direct, atol=1e-6)
            entry = fleet._entry("vgg")
            entry.group.slots[0].replica.kill()
            futures = [fleet.submit("vgg", sample) for sample in samples]
            for future, expected in zip(futures, direct):
                try:
                    row = future.result(timeout=120)
                except (FleetError, BatcherClosed):
                    continue
                np.testing.assert_allclose(row, expected, atol=1e-6)


class TestRolloutEndToEnd:
    def test_canary_auto_promotes_healthy_version(self):
        samples = _samples(40)
        with FleetServer(replicas=2, max_wait_ms=1.0) as fleet:
            fleet.register("tag", _tag_model(1.0), warmup_sample=samples[0])
            # max_p99_ratio is slack: this test exercises the promote path,
            # not latency discrimination, and a 1-core CI box jitters.
            rollout = fleet.deploy("tag", _tag_model(2.0), version=2,
                                   mode="canary", fraction=0.25, min_requests=5,
                                   max_p99_ratio=100.0)
            for sample in samples:
                row = fleet.submit("tag", sample).result(timeout=60)
                # Either arm answers correctly for its version, never a mix.
                assert np.allclose(row, 1.0) or np.allclose(row, 2.0)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and rollout.decision is None:
                time.sleep(0.02)
            assert rollout.decision == "promote"
            entry = fleet._entry("tag")
            assert entry.metrics["promotions"].value == 1
            assert entry.group.version == 2
            # Post-promotion traffic is answered only by v2.
            row = fleet.submit("tag", samples[0]).result(timeout=60)
            np.testing.assert_allclose(row, np.full(NUM_CLASSES, 2.0), atol=1e-6)

    def test_canary_rolls_back_when_candidate_dies(self):
        samples = _samples(30)
        with FleetServer(replicas=1, max_wait_ms=1.0, max_restarts=0) as fleet:
            fleet.register("tag", _tag_model(1.0), warmup_sample=samples[0])
            rollout = fleet.deploy("tag", _tag_model(2.0), version=2,
                                   mode="canary", fraction=0.5, min_requests=3,
                                   max_error_rate=0.2)
            for slot in fleet._entry("tag").canary["group"].slots:
                slot.replica.kill()
            rows = [fleet.submit("tag", sample).result(timeout=60)
                    for sample in samples]
            # The dead candidate never answers a client; baseline covers.
            for row in rows:
                np.testing.assert_allclose(row, np.ones(NUM_CLASSES), atol=1e-6)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and rollout.decision is None:
                time.sleep(0.02)
            assert rollout.decision == "rollback"
            entry = fleet._entry("tag")
            assert entry.metrics["rollbacks"].value == 1
            assert entry.group.version == 1
            assert entry.canary is None

    def test_shadow_compares_but_never_answers(self):
        samples = _samples(10)
        with FleetServer(replicas=1, max_wait_ms=1.0) as fleet:
            fleet.register("tag", _tag_model(1.0), warmup_sample=samples[0])
            rollout = fleet.deploy("tag", _tag_model(2.0), version=2,
                                   mode="shadow", tolerance=1e-5)
            for sample in samples:
                row = fleet.submit("tag", sample).result(timeout=60)
                np.testing.assert_allclose(row, np.ones(NUM_CLASSES), atol=1e-6)
            deadline = time.monotonic() + 10
            while (time.monotonic() < deadline
                   and rollout.report()["compared"] < len(samples)):
                time.sleep(0.02)
            report = fleet.shadow_report("tag")
            assert report["compared"] == len(samples)
            assert report["mismatches"] == len(samples)
            assert report["max_abs_diff"] == pytest.approx(1.0)
            fleet.stop_shadow("tag")
            assert fleet.shadow_report("tag") is None

    def test_clean_shadow_promotes_on_request(self):
        samples = _samples(6)
        with FleetServer(replicas=1, max_wait_ms=1.0) as fleet:
            fleet.register("tag", _tag_model(5.0), warmup_sample=samples[0])
            rollout = fleet.deploy("tag", _tag_model(5.0), version=2, mode="shadow")
            for sample in samples:
                fleet.submit("tag", sample).result(timeout=60)
            deadline = time.monotonic() + 10
            while (time.monotonic() < deadline
                   and rollout.report()["compared"] < len(samples)):
                time.sleep(0.02)
            assert rollout.clean
            fleet.promote_shadow("tag")
            assert fleet._entry("tag").group.version == 2
            row = fleet.submit("tag", samples[0]).result(timeout=60)
            np.testing.assert_allclose(row, np.full(NUM_CLASSES, 5.0), atol=1e-6)


class TestStreamingSessions:
    def test_chunked_stream_matches_one_shot_forward(self):
        """The acceptance bar: chunked streaming == fixed-T forward to 1e-6."""
        model = _tiny_model(seed=3, timesteps=6)
        frames = _samples(6, seed=9)  # six genuinely different event frames
        one_shot = InferenceEngine(model).infer(frames[:, None])  # (T,1,C,H,W)
        with FleetServer(replicas=2, max_wait_ms=1.0) as fleet:
            fleet.register("stream", model)
            session = fleet.open_session("stream")
            pinned = session.replica_name
            session.send_chunk(frames[:2])
            # Batch traffic interleaves with the stream on the same fleet
            # without perturbing the carried membrane state.
            fleet.submit("stream", frames[0]).result(timeout=60)
            session.send_chunk(frames[2:3])
            final = session.send_chunk(frames[3:])
            assert session.replica_name == pinned  # affinity held
            assert session.timesteps_seen == 6
            np.testing.assert_allclose(final, one_shot[0], atol=1e-6)
            session.close()
            with pytest.raises(SessionClosed):
                session.send_chunk(frames[:1])

    def test_session_repins_after_replica_crash(self):
        model = _tiny_model(seed=3, timesteps=6)
        frames = _samples(6, seed=9)
        one_shot = InferenceEngine(model).infer(frames[:, None])
        with FleetServer(replicas=2, max_wait_ms=1.0, max_restarts=0) as fleet:
            fleet.register("stream", model)
            session = fleet.open_session("stream")
            session.send_chunk(frames[:3])
            pinned = session.replica_name
            entry = fleet._entry("stream")
            for slot in entry.group.slots:
                if slot.replica.name == pinned:
                    slot.replica.kill()
            final = session.send_chunk(frames[3:])
            assert session.repins == 1
            assert session.replica_name != pinned
            # The temporal state travelled with the session: the stream is
            # still numerically the one-shot forward.
            np.testing.assert_allclose(final, one_shot[0], atol=1e-6)

    def test_idle_sessions_are_evicted(self):
        with FleetServer(replicas=1, max_wait_ms=1.0,
                         session_idle_timeout_s=0.1) as fleet:
            fleet.register("stream", _tag_model(1.0))
            session = fleet.open_session("stream")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not session.closed:
                time.sleep(0.02)
            assert session.closed
            assert session.close_reason == "idle"
            with pytest.raises(SessionClosed):
                session.send_chunk(np.zeros((1,) + SAMPLE_SHAPE, np.float32))
            assert not fleet._entry("stream").sessions


class _CollectExporter:
    def __init__(self):
        self.spans = []

    def export(self, span):
        self.spans.append(span)


class TestObservability:
    def test_request_trace_tree_and_metrics(self):
        tracer = get_tracer()
        exporter = _CollectExporter()
        tracer.set_exporters((exporter,))
        tracer.enabled = True
        registry = default_registry()
        try:
            with FleetServer(replicas=2, max_wait_ms=1.0) as fleet:
                fleet.register("traced", _tag_model(1.0))
                fleet.submit("traced", _samples(1)[0]).result(timeout=60)
                assert registry.get("repro_fleet_queue_depth",
                                    {"model": "traced"}) is not None
                assert registry.get(
                    "repro_fleet_replica_outstanding",
                    {"model": "traced", "replica": "0"}) is not None
                utilization = registry.get(
                    "repro_fleet_replica_utilization",
                    {"model": "traced", "replica": "0"})
                assert 0.0 <= utilization.value <= 1.0
        finally:
            tracer.enabled = False
            tracer.set_exporters(())
        roots = [span for span in exporter.spans if span.name == "serve.request"]
        assert roots, "fleet requests must produce serve.request roots"
        root = roots[-1]
        route = root.find("fleet.route")
        assert route is not None and route.attrs.get("arm") == "baseline"
        assert root.find("replica.request") is not None, \
            "the replica-level span must nest inside the fleet request tree"

    def test_unregister_removes_fleet_metrics(self):
        registry = default_registry()
        with FleetServer(replicas=1, max_wait_ms=1.0) as fleet:
            fleet.register("gone", _tag_model(1.0))
            fleet.submit("gone", _samples(1)[0]).result(timeout=60)
            assert registry.get("repro_fleet_queue_depth",
                                {"model": "gone"}) is not None
            fleet.unregister("gone")
            assert registry.get("repro_fleet_queue_depth",
                                {"model": "gone"}) is None
            assert registry.get("repro_serve_requests_total",
                                {"model": "gone"}) is None
            with pytest.raises(KeyError):
                fleet.submit("gone", _samples(1)[0])

    def test_close_resolves_queued_requests_typed(self, monkeypatch):
        # Blind the dispatcher's dequeue so submissions stay queued, then
        # close the fleet: every queued future must resolve with a typed
        # error, not hang.
        monkeypatch.setattr(AdmissionQueue, "get",
                            lambda self, timeout=0.05: time.sleep(0.005))
        fleet = FleetServer(replicas=1, max_wait_ms=1.0, queue_capacity=16)
        fleet.register("vgg", _tag_model(1.0))
        futures = [fleet.submit("vgg", sample) for sample in _samples(8)]
        fleet.close()
        for future in futures:
            assert future.done()
            exc = None if future.cancelled() else future.exception()
            assert future.cancelled() or isinstance(
                exc, (BatcherClosed, FleetError))
