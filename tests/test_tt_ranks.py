"""Tests for rank helpers: admissible limits, clamping, and the search grid.

The regression of record: ``scale_ranks`` / ``rank_for_layer`` used to return
ranks larger than what a narrow (width-scaled) layer can actually realise;
the TT layers would silently clip while every analytic consumer (FLOPs,
energy, compression ratios) kept using the requested value.  Both helpers now
clamp to the layer's maximal admissible rank.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tt.decomposition import max_tt_ranks
from repro.tt.layers import PTTConv2d
from repro.tt.ranks import (
    PAPER_RANKS_RESNET18,
    admissible_rank_limits,
    rank_for_layer,
    scale_ranks,
)


class TestAdmissibleLimits:
    def test_full_scale_resnet18(self):
        limits = admissible_rank_limits("resnet18")
        assert len(limits) == len(PAPER_RANKS_RESNET18)
        # Layer 0 is 64 -> 64 with a 3x3 kernel: the uniform rank tops out at 64.
        assert limits[0] == min(max_tt_ranks(64, 64, (3, 3)))
        # All paper ranks are admissible at full width.
        assert all(r <= limit for r, limit in zip(PAPER_RANKS_RESNET18, limits))

    def test_width_scaling_shrinks_limits(self):
        full = admissible_rank_limits("resnet18", width_scale=1.0)
        narrow = admissible_rank_limits("resnet18", width_scale=0.25)
        assert all(n <= f for n, f in zip(narrow, full))
        assert any(n < f for n, f in zip(narrow, full))


class TestClampRegression:
    def test_scale_ranks_clamps_overfull_ranks(self):
        limits = admissible_rank_limits("resnet18", width_scale=0.25)
        unclamped = scale_ranks(PAPER_RANKS_RESNET18, 1.0)
        clamped = scale_ranks(PAPER_RANKS_RESNET18, 1.0, limits=limits)
        # The deep layers' paper ranks (e.g. 153, 186) exceed the narrow
        # model's limits; unclamped they silently request over-full cores.
        assert any(u > limit for u, limit in zip(unclamped, limits))
        assert all(c <= limit for c, limit in zip(clamped, limits))

    def test_clamped_rank_matches_what_the_layer_actually_builds(self):
        """The built layer's effective ranks equal the clamped request."""
        limits = admissible_rank_limits("resnet18", width_scale=0.25)
        clamped = scale_ranks(PAPER_RANKS_RESNET18, 1.0, limits=limits)
        # Layer 13 at width 0.25: 153 requested on a 128-channel convolution.
        index = 13
        requested = PAPER_RANKS_RESNET18[index]
        in_c = out_c = 128  # 512-wide stage at width_scale 0.25
        assert requested > clamped[index]
        layer = PTTConv2d(in_c, out_c, kernel_size=3, rank=requested)
        assert layer.ranks == (clamped[index],) * 3

    def test_scale_ranks_limits_length_mismatch(self):
        with pytest.raises(ValueError):
            scale_ranks([8, 8], 1.0, limits=[8])

    def test_rank_for_layer_clamps_by_default(self):
        # Layer 14's paper rank is 186; at width 0.1 the layer is 51 channels
        # wide, so the scaled rank must respect the shrunken limit.
        rank = rank_for_layer(14, "resnet18", scale=0.1)
        limit = admissible_rank_limits("resnet18", width_scale=0.1)[14]
        assert rank <= limit
        unclamped = rank_for_layer(14, "resnet18", scale=0.1, clamp=False)
        assert unclamped == max(1, round(186 * 0.1))

    def test_existing_behaviour_preserved_at_full_scale(self):
        # Paper ranks are all admissible at width 1, so clamping is a no-op.
        for index in range(len(PAPER_RANKS_RESNET18)):
            assert rank_for_layer(index, "resnet18") == PAPER_RANKS_RESNET18[index]

    def test_scale_ranks_without_limits_unchanged(self):
        assert scale_ranks([10, 20], 0.5) == [5, 10]
