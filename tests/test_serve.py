"""Tests for the ``repro.serve`` subsystem.

Covers the five serving components plus the facade:

* :class:`InferenceEngine` — snapshot semantics and request shapes;
* :class:`MicroBatcher` — batching policy and concurrency safety (32+
  threads, exactly one response per request, exceptions forwarded);
* :class:`ModelRegistry` — versioning, warm-up at load, atomic hot-swap;
* :class:`ResponseCache` — LRU eviction, digest keys, isolation copies;
* :class:`ServerStats` — percentiles, QPS, batch-fill histogram;
* :class:`InferenceServer` — the wired-together request path.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.models.builder import convert_to_tt, count_tt_layers
from repro.models.vgg import spiking_vgg9
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.serve import (
    BatcherClosed,
    InferenceEngine,
    InferenceServer,
    MicroBatcher,
    ModelRegistry,
    ResponseCache,
    ServerStats,
    input_digest,
)

TIMESTEPS = 2
SAMPLE_SHAPE = (3, 10, 10)


@pytest.fixture(scope="module")
def tiny_engine() -> InferenceEngine:
    """A merged serving snapshot of a tiny PTT VGG-9 (shared: engines are frozen)."""
    model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=TIMESTEPS,
                         width_scale=0.08, rng=np.random.default_rng(0))
    convert_to_tt(model, variant="ptt", rank=3)
    return InferenceEngine(model)


def _echo_batch(batch: np.ndarray) -> np.ndarray:
    """Identity-revealing stand-in for an engine: row i -> that sample's mean."""
    return batch.mean(axis=(1, 2, 3))


def _sample(value: float) -> np.ndarray:
    return np.full(SAMPLE_SHAPE, np.float32(value))


class TestInferenceEngine:
    def test_accepts_all_request_shapes(self, tiny_engine, rng):
        single = rng.random(SAMPLE_SHAPE).astype(np.float32)
        batch = rng.random((5,) + SAMPLE_SHAPE).astype(np.float32)
        encoded = rng.random((TIMESTEPS, 5) + SAMPLE_SHAPE).astype(np.float32)
        assert tiny_engine.infer(single).shape == (4,)
        assert tiny_engine.infer(batch).shape == (5, 4)
        assert tiny_engine.infer(encoded).shape == (5, 4)
        with pytest.raises(ValueError):
            tiny_engine.infer(rng.random((10, 10)))

    def test_single_sample_equals_batch_row(self, tiny_engine, rng):
        batch = rng.random((3,) + SAMPLE_SHAPE).astype(np.float32)
        np.testing.assert_allclose(tiny_engine.infer(batch[0]),
                                   tiny_engine.infer(batch)[0], atol=1e-6)

    def test_counts_requests(self, rng):
        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=TIMESTEPS,
                             width_scale=0.08, rng=np.random.default_rng(0))
        engine = InferenceEngine(model)
        assert engine.requests_served == 0
        engine.infer(rng.random((3,) + SAMPLE_SHAPE).astype(np.float32))
        engine.infer(rng.random(SAMPLE_SHAPE).astype(np.float32))
        assert engine.requests_served == 4

    def test_dense_model_merges_zero_layers(self):
        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=TIMESTEPS,
                             width_scale=0.08)
        engine = InferenceEngine(model)
        assert engine.merged_layers == 0

    def test_adopting_without_copy_merges_in_place(self):
        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=TIMESTEPS,
                             width_scale=0.08, rng=np.random.default_rng(0))
        convert_to_tt(model, variant="ptt", rank=3)
        engine = InferenceEngine(model, copy_model=False)
        assert engine.model is model
        assert count_tt_layers(model) == 0
        assert not model.training

    def test_rejects_non_spiking_model(self):
        with pytest.raises(TypeError):
            InferenceEngine(object())  # type: ignore[arg-type]

    def test_timesteps_override_retimes_the_snapshot(self, rng):
        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=4,
                             width_scale=0.08, rng=np.random.default_rng(0))
        engine = InferenceEngine(model, timesteps=2)
        assert engine.timesteps == 2 and engine.model.timesteps == 2
        assert model.timesteps == 4                 # source model untouched
        sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
        assert engine.infer(sample).shape == (4,)   # serves at the shorter T
        with pytest.raises(ValueError):
            InferenceEngine(model, timesteps=0)

    def test_warmup_needs_sample_or_shape(self, tiny_engine):
        with pytest.raises(ValueError):
            tiny_engine.warmup()
        tiny_engine.warmup(input_shape=SAMPLE_SHAPE)


class TestMicroBatcher:
    def test_every_request_gets_its_own_answer_under_contention(self):
        """>= 32 threads submit simultaneously; each gets exactly its result."""
        num_threads, per_thread = 32, 4
        stats = ServerStats()
        results: dict = {}
        errors: list = []
        with MicroBatcher(_echo_batch, max_batch_size=8, max_wait_ms=5,
                          stats=stats) as batcher:
            barrier = threading.Barrier(num_threads)

            def client(tid: int) -> None:
                try:
                    barrier.wait()
                    for j in range(per_thread):
                        value = tid * 100 + j
                        results[(tid, j)] = float(batcher.infer(_sample(value)))
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=client, args=(tid,))
                       for tid in range(num_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        assert len(results) == num_threads * per_thread
        for (tid, j), value in results.items():
            assert value == pytest.approx(tid * 100 + j, abs=1e-3)
        assert stats.requests == num_threads * per_thread
        assert max(stats.batch_fill_histogram()) <= 8
        assert sum(size * count for size, count
                   in stats.batch_fill_histogram().items()) == stats.requests

    def test_batches_fill_up_to_max_batch_size(self):
        stats = ServerStats()
        batcher = MicroBatcher(_echo_batch, max_batch_size=4, max_wait_ms=50, stats=stats)
        futures = [batcher.submit(_sample(i)) for i in range(8)]
        for future in futures:
            future.result(timeout=5)
        batcher.close()
        histogram = stats.batch_fill_histogram()
        assert max(histogram) <= 4
        assert stats.batches >= 2

    def test_exceptions_propagate_to_every_request_in_the_batch(self):
        def explode(batch):
            raise RuntimeError("model fell over")

        batcher = MicroBatcher(explode, max_batch_size=4, max_wait_ms=20)
        futures = [batcher.submit(_sample(i)) for i in range(4)]
        for future in futures:
            with pytest.raises(RuntimeError, match="fell over"):
                future.result(timeout=5)
        batcher.close()

    def test_row_count_mismatch_is_an_error_not_a_hang(self):
        batcher = MicroBatcher(lambda batch: batch.mean(axis=(1, 2, 3))[:1],
                               max_batch_size=4, max_wait_ms=20)
        futures = [batcher.submit(_sample(i)) for i in range(3)]
        with pytest.raises(RuntimeError, match="rows"):
            for future in futures:
                future.result(timeout=5)
        batcher.close()

    def test_close_drains_pending_then_rejects(self):
        batcher = MicroBatcher(_echo_batch, max_batch_size=2, max_wait_ms=1)
        futures = [batcher.submit(_sample(i)) for i in range(6)]
        batcher.close()
        assert [float(f.result(timeout=5)) for f in futures] == pytest.approx(list(range(6)),
                                                                              abs=1e-3)
        with pytest.raises(RuntimeError):
            batcher.submit(_sample(0))
        batcher.close()          # idempotent

    def test_close_without_drain_resolves_queued_futures(self):
        """close(drain=False) must deterministically resolve every queued
        future — even while a worker is wedged inside the engine — so no
        caller blocked in ``future.result()`` hangs across shutdown."""
        started = threading.Event()
        release = threading.Event()

        def blocking(batch: np.ndarray) -> np.ndarray:
            started.set()
            release.wait(timeout=10)
            return batch.mean(axis=(1, 2, 3))

        batcher = MicroBatcher(blocking, max_batch_size=1, max_wait_ms=1)
        first = batcher.submit(_sample(0))
        assert started.wait(timeout=5)            # worker is inside blocking()
        queued = [batcher.submit(_sample(i)) for i in range(1, 5)]
        closer = threading.Thread(
            target=lambda: batcher.close(timeout=0.2, drain=False))
        closer.start()
        closer.join(timeout=5)
        assert not closer.is_alive()              # close returns despite the wedge
        for future in queued:
            assert future.done()
            assert future.cancelled() or isinstance(future.exception(),
                                                    BatcherClosed)
        with pytest.raises(RuntimeError):
            batcher.submit(_sample(9))
        # The in-flight request still resolves through the normal batch path.
        release.set()
        assert float(first.result(timeout=5)) == pytest.approx(0.0, abs=1e-3)

    def test_submit_validates_shape(self):
        with MicroBatcher(_echo_batch) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.zeros((2,) + SAMPLE_SHAPE, dtype=np.float32))

    def test_serves_a_real_engine(self, tiny_engine, rng):
        batch = rng.random((4,) + SAMPLE_SHAPE).astype(np.float32)
        direct = tiny_engine.infer(batch)
        with MicroBatcher(tiny_engine, max_batch_size=4, max_wait_ms=20) as batcher:
            futures = [batcher.submit(sample) for sample in batch]
            rows = np.stack([future.result(timeout=10) for future in futures])
        np.testing.assert_allclose(rows, direct, atol=1e-6)

    def test_predict_convenience(self, tiny_engine, rng):
        sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
        with MicroBatcher(tiny_engine, max_wait_ms=1) as batcher:
            assert batcher.predict(sample) == int(np.argmax(tiny_engine.infer(sample)))


class TestModelRegistry:
    def _model(self, seed: int = 0):
        return spiking_vgg9(num_classes=4, in_channels=3, timesteps=TIMESTEPS,
                            width_scale=0.08, rng=np.random.default_rng(seed))

    def test_register_get_and_auto_versioning(self):
        registry = ModelRegistry()
        first = registry.register("vgg", self._model(0))
        second = registry.register("vgg", self._model(1))
        assert registry.versions("vgg") == [1, 2]
        assert registry.latest_version("vgg") == 2
        assert registry.get("vgg") is second
        assert registry.get("vgg", version=1) is first
        assert "vgg" in registry and len(registry) == 1

    def test_warmup_runs_before_publication(self):
        registry = ModelRegistry()
        engine = registry.register("vgg", self._model(),
                                   warmup_sample=np.zeros(SAMPLE_SHAPE, np.float32))
        assert engine.requests_served >= 1

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.register("vgg", self._model(), version="prod")
        with pytest.raises(ValueError, match="already has"):
            registry.register("vgg", self._model(), version="prod")

    def test_swap_is_atomic_and_moves_latest(self):
        registry = ModelRegistry()
        registry.register("vgg", self._model(0))
        old = registry.get("vgg")
        with pytest.raises(KeyError):
            registry.swap("missing", self._model(1))
        new = registry.swap("vgg", self._model(1))
        assert registry.get("vgg") is new and new is not old
        assert registry.get("vgg", version=1) is old   # old version still addressable

    def test_unregister_repoints_latest(self):
        registry = ModelRegistry()
        registry.register("vgg", self._model(0))
        registry.register("vgg", self._model(1))
        registry.unregister("vgg", version=2)
        assert registry.latest_version("vgg") == 1
        registry.unregister("vgg")
        with pytest.raises(KeyError):
            registry.get("vgg")

    def test_duplicate_version_fails_before_warmup(self):
        registry = ModelRegistry()
        registry.register("vgg", self._model(0), version="prod")
        spare = InferenceEngine(self._model(1))
        with pytest.raises(ValueError, match="already has"):
            registry.register("vgg", spare, version="prod",
                              warmup_sample=np.zeros(SAMPLE_SHAPE, np.float32))
        assert spare.requests_served == 0           # rejected before warm-up ran

    def test_make_latest_false_keeps_pointer(self):
        registry = ModelRegistry()
        registry.register("vgg", self._model(0))
        registry.register("vgg", self._model(1), make_latest=False)
        assert registry.latest_version("vgg") == 1

    def test_describe_lists_every_version(self):
        registry = ModelRegistry()
        registry.register("vgg", self._model(0))
        registry.register("vgg", self._model(1))
        rows = registry.describe()
        assert [(name, version, latest) for name, version, latest, _ in rows] == \
            [("vgg", 1, False), ("vgg", 2, True)]


class TestResponseCache:
    def test_lru_eviction_order(self):
        cache = ResponseCache(capacity=2)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        assert cache.get("a") is not None          # refresh 'a'
        cache.put("c", np.array([3.0]))            # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert len(cache) == 2

    def test_hit_miss_counters(self):
        cache = ResponseCache(capacity=4)
        assert cache.get("x") is None
        cache.put("x", np.array([1.0]))
        cache.get("x")
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_digest_separates_content_shape_dtype(self, rng):
        a = rng.random((3, 4, 4)).astype(np.float32)
        assert input_digest(a) == input_digest(a.copy())
        assert input_digest(a) != input_digest(a + 1e-6)
        assert input_digest(a) != input_digest(a.reshape(3, 2, 8))
        assert input_digest(a) != input_digest(a.astype(np.float64))

    def test_values_are_isolated_copies(self):
        cache = ResponseCache(capacity=2)
        value = np.array([1.0, 2.0])
        cache.put("k", value)
        value[:] = -1                               # caller mutates after put
        fetched = cache.get("k")
        np.testing.assert_array_equal(fetched, [1.0, 2.0])
        fetched[:] = -2                             # caller mutates the response
        np.testing.assert_array_equal(cache.get("k"), [1.0, 2.0])

    def test_counters_export_through_metrics_registry(self):
        registry = MetricsRegistry()
        cache = ResponseCache(capacity=2, name="exported", registry=registry)
        labels = {"model": "exported"}
        cache.get("miss")
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        cache.put("c", np.array([3.0]))            # evicts 'a'
        cache.get("c")
        assert registry.get("repro_serve_response_cache_hits_total",
                            labels).value == cache.hits == 1
        assert registry.get("repro_serve_response_cache_misses_total",
                            labels).value == cache.misses == 1
        assert registry.get("repro_serve_response_cache_evictions_total",
                            labels).value == cache.evictions == 1
        cache.deregister_metrics()
        assert registry.get("repro_serve_response_cache_hits_total",
                            labels) is None
        # The plain attributes keep working after deregistration.
        cache.get("c")
        assert cache.hits == 2

    def test_anonymous_cache_stays_out_of_the_registry(self):
        before = len(default_registry().snapshot())
        cache = ResponseCache(capacity=2)
        cache.put("k", np.array([1.0]))
        assert len(default_registry().snapshot()) == before

    def test_lookup_and_clear(self, rng):
        cache = ResponseCache(capacity=2)
        sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
        key, value = cache.lookup(sample)
        assert value is None
        cache.put(key, np.array([1.0]))
        assert cache.lookup(sample)[1] is not None
        cache.clear()
        assert len(cache) == 0


class TestServerStats:
    def test_percentiles_match_numpy(self):
        stats = ServerStats()
        latencies = [i / 1000.0 for i in range(1, 101)]
        for latency in latencies:
            stats.record_request(latency)
        summary = stats.latency_summary()
        assert summary["p50_s"] == pytest.approx(np.percentile(latencies, 50))
        assert summary["p95_s"] == pytest.approx(np.percentile(latencies, 95))
        assert summary["p99_s"] == pytest.approx(np.percentile(latencies, 99))
        assert summary["count"] == 100

    def test_qps_over_observed_window(self):
        stats = ServerStats()
        # 10 requests completing over one virtual second.
        for i in range(10):
            stats.record_request(0.0, timestamp=100.0 + i / 9.0)
        assert stats.qps() == pytest.approx(10.0, rel=0.01)

    def test_batch_fill_histogram_and_mean(self):
        stats = ServerStats()
        for size in (4, 4, 8):
            stats.record_batch(size, 0.01)
        assert stats.batch_fill_histogram() == {4: 2, 8: 1}
        assert stats.mean_batch_fill() == pytest.approx(16 / 3)

    def test_empty_stats_render_zeros(self):
        table = ServerStats().as_table()
        assert table["requests"] == 0 and table["qps"] == 0
        assert "p99_ms" in table
        assert ServerStats().format_table()        # renders without traffic

    def test_bounded_latency_window(self):
        stats = ServerStats(max_samples=10)
        for i in range(25):
            stats.record_request(float(i))
        assert stats.latency_summary()["count"] == 10
        assert stats.requests == 25                # totals are not windowed

    def test_reset(self):
        stats = ServerStats()
        stats.record_request(0.5)
        stats.record_batch(4, 0.1)
        stats.record_cache(hit=True)
        stats.reset()
        assert stats.requests == 0 and stats.batches == 0 and stats.cache_hits == 0


class TestInferenceServer:
    def test_end_to_end_burst(self, tiny_engine, rng):
        """64 concurrent submissions: all answered, stats populated."""
        samples = rng.random((64,) + SAMPLE_SHAPE).astype(np.float32)
        direct = tiny_engine.infer(samples)
        with InferenceServer(max_batch_size=16, max_wait_ms=10) as server:
            server.register("vgg", tiny_engine, warmup_sample=samples[0])
            futures = [server.submit("vgg", sample) for sample in samples]
            rows = np.stack([future.result(timeout=30) for future in futures])
            np.testing.assert_allclose(rows, direct, atol=1e-6)
            table = server.stats_table()["vgg"]
            assert table["requests"] >= 64
            assert table["qps"] > 0 and table["p99_ms"] > 0
            assert server.stats("vgg").mean_batch_fill() > 1.0

    def test_cache_short_circuits_repeats(self, tiny_engine, rng):
        sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
        with InferenceServer(max_wait_ms=1) as server:
            server.register("vgg", tiny_engine)
            first = server.infer("vgg", sample)
            second = server.infer("vgg", sample)
            np.testing.assert_array_equal(first, second)
            assert server.cache("vgg").hits == 1
            assert server.stats("vgg").cache_hits == 1
            # use_cache=False bypasses the lookup entirely.
            server.infer("vgg", sample, use_cache=False)
            assert server.cache("vgg").hits == 1

    def test_hot_swap_changes_answers_and_cache_keys(self, rng):
        sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
        model_a = spiking_vgg9(num_classes=4, in_channels=3, timesteps=TIMESTEPS,
                               width_scale=0.08, rng=np.random.default_rng(0))
        model_b = spiking_vgg9(num_classes=4, in_channels=3, timesteps=TIMESTEPS,
                               width_scale=0.08, rng=np.random.default_rng(9))
        # Give v2 unmistakably different logits regardless of spiking activity.
        model_b.classifier.bias.data[:] = np.arange(4, dtype=np.float32)
        with InferenceServer(max_wait_ms=1) as server:
            server.register("vgg", model_a)
            before = server.infer("vgg", sample)
            server.swap("vgg", model_b)
            after = server.infer("vgg", sample)
            assert server.registry.latest_version("vgg") == 2
            # The cached v1 response must not answer for v2.
            assert server.cache("vgg").hits == 0
            assert not np.allclose(before, after)

    def test_unregister_tears_down_plumbing(self, tiny_engine, rng):
        registry = default_registry()
        labels = {"model": "ephemeral"}
        sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
        with InferenceServer(max_wait_ms=1) as server:
            server.register("ephemeral", tiny_engine)
            server.infer("ephemeral", sample)
            assert registry.get("repro_serve_requests_total", labels) is not None
            assert registry.get("repro_serve_response_cache_misses_total",
                                labels) is not None
            batcher = server._batchers["ephemeral"]
            server.unregister("ephemeral")
            # Plumbing is gone: batcher closed, instruments deregistered,
            # the name no longer served.
            assert registry.get("repro_serve_requests_total", labels) is None
            assert registry.get("repro_serve_response_cache_misses_total",
                                labels) is None
            with pytest.raises(RuntimeError):
                batcher.submit(sample)
            with pytest.raises(KeyError):
                server.submit("ephemeral", sample)

    def test_unregister_single_version_keeps_serving(self, tiny_engine, rng):
        sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
        with InferenceServer(max_wait_ms=1) as server:
            server.register("multi", tiny_engine, version=1)
            server.register("multi", tiny_engine, version=2)
            server.unregister("multi", version=2)
            assert server.registry.latest_version("multi") == 1
            assert server.infer("multi", sample).shape == (4,)

    def test_hot_swap_under_concurrent_traffic(self, rng):
        """Hammer a served name from several threads across a hot swap.

        Tag models (all-zero weights, constant classifier bias) answer with
        exactly their bias, so version identity is checkable per response:
        every answer must be all-v1 or all-v2 (never a mix), requests
        submitted after ``swap`` returned must all be v2, and v1 cache
        entries must never answer v2 traffic.
        """
        def tag_model(tag: float):
            model = spiking_vgg9(num_classes=4, in_channels=3,
                                 timesteps=TIMESTEPS, width_scale=0.08,
                                 rng=np.random.default_rng(0))
            for param in model.parameters():
                param.data[:] = 0.0
            model.classifier.bias.data[:] = np.float32(tag)
            return model

        pool = [rng.random(SAMPLE_SHAPE).astype(np.float32) for _ in range(6)]
        swapped = threading.Event()
        stop = threading.Event()
        outcomes: list = []
        errors: list = []

        def hammer(tid: int) -> None:
            i = tid
            try:
                while not stop.is_set():
                    after_swap = swapped.is_set()
                    row = server.infer("hot", pool[i % len(pool)], timeout=30)
                    outcomes.append((after_swap, row))
                    i += 1
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with InferenceServer(max_batch_size=4, max_wait_ms=1) as server:
            server.register("hot", tag_model(1.0))
            primed = server.infer("hot", pool[0])       # cache a v1 answer
            np.testing.assert_allclose(primed, np.ones(4), atol=1e-6)
            threads = [threading.Thread(target=hammer, args=(tid,))
                       for tid in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.15)
            server.swap("hot", tag_model(2.0))
            swapped.set()
            time.sleep(0.15)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            # The v1-keyed cache entry must not answer the v2 request.
            np.testing.assert_allclose(server.infer("hot", pool[0]),
                                       np.full(4, 2.0), atol=1e-6)
        assert outcomes
        saw_v1 = saw_v2 = False
        for after_swap, row in outcomes:
            is_v1 = np.allclose(row, 1.0, atol=1e-6)
            is_v2 = np.allclose(row, 2.0, atol=1e-6)
            assert is_v1 != is_v2, f"mixed-version logits: {row}"
            saw_v1 |= is_v1
            saw_v2 |= is_v2
            if after_swap:
                # Staleness is bounded to in-flight batches: anything
                # submitted after swap() returned is answered by v2.
                assert is_v2, "request submitted after swap answered by v1"
        assert saw_v1 and saw_v2, "traffic did not straddle the swap"

    def test_serves_models_from_a_prepopulated_registry(self, tiny_engine, rng):
        """Names registered directly on the registry get plumbing lazily."""
        registry = ModelRegistry()
        registry.register("direct", tiny_engine)
        with InferenceServer(registry, max_wait_ms=1) as server:
            sample = rng.random(SAMPLE_SHAPE).astype(np.float32)
            assert server.infer("direct", sample).shape == (4,)
            assert server.stats("direct").requests >= 1

    def test_unknown_model_and_closed_server(self, tiny_engine, rng):
        server = InferenceServer(max_wait_ms=1)
        server.register("vgg", tiny_engine)
        with pytest.raises(KeyError):
            server.submit("nope", rng.random(SAMPLE_SHAPE).astype(np.float32))
        server.close()
        with pytest.raises(RuntimeError):
            server.submit("vgg", rng.random(SAMPLE_SHAPE).astype(np.float32))
        with pytest.raises(RuntimeError):
            server.register("other", tiny_engine)

    def test_pipeline_result_is_directly_servable(self, tiny_static_dataset):
        from repro.training.config import TrainingConfig
        from repro.training.pipeline import TTSNNPipeline

        config = TrainingConfig(timesteps=2, epochs=1, batch_size=8,
                                learning_rate=0.05, tt_variant="htt", tt_rank=3, seed=0)
        pipeline = TTSNNPipeline(
            lambda: spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                                 width_scale=0.08, rng=np.random.default_rng(0)),
            config,
        )
        result = pipeline.run(tiny_static_dataset, epochs=1)
        engine = result.serving_engine
        assert isinstance(engine, InferenceEngine)
        assert not engine.model.training
        assert count_tt_layers(engine.model) == 0
        sample = tiny_static_dataset.images[0]
        with InferenceServer(max_wait_ms=1) as server:
            server.register("htt", engine, warmup_sample=sample)
            assert 0 <= server.predict("htt", sample) < 4
        # Sweeps that never serve can skip the snapshot cost entirely.
        result = pipeline.run(tiny_static_dataset, epochs=0, build_serving_engine=False)
        assert result.serving_engine is None
