"""Tests for the entangled TT supernet.

The load-bearing guarantee is the **entanglement invariant**: a subnet
sampled from the supernet produces *bitwise-identical* logits to a standalone
model built with the same (format, rank) configuration and copied core
slices.  Everything else — gradient locality of sliced training, mixture
semantics, compiled-runtime integration — builds on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.vgg import spiking_vgg9
from repro.search import EntangledTTConv2d, LayerChoice, SearchSpace, TTSupernet
from repro.search.space import LayerSearchSpace
from repro.serve.engine import InferenceEngine
from repro.snn.functional import reset_model_state
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer
from repro.tt.layers import HTTConv2d, PTTConv2d, STTConv2d


def _model(seed: int = 0, timesteps: int = 2):
    return spiking_vgg9(num_classes=4, in_channels=3, timesteps=timesteps,
                        width_scale=0.1, rng=np.random.default_rng(seed))


def _supernet(seed: int = 0, timesteps: int = 2, **kwargs) -> TTSupernet:
    return TTSupernet(_model(seed, timesteps), max_rank=8, **kwargs)


def _batch(seed: int = 0, timesteps: int = 2, n: int = 3):
    rng = np.random.default_rng(seed + 100)
    return rng.random((timesteps, n, 3, 12, 12)).astype(np.float32)


def _logits(model, batch, step_mode=None):
    reset_model_state(model)
    return [out.data.copy() for out in model.run_timesteps(batch, step_mode=step_mode)]


class TestEntanglementInvariant:
    @pytest.mark.parametrize("fmt", ["stt", "ptt", "htt", "dense"])
    @pytest.mark.parametrize("step_mode", ["fused", "single"])
    def test_sampled_subnet_is_bitwise_identical_to_materialised(self, fmt, step_mode):
        net = _supernet()
        config = []
        for index, layer in enumerate(net.space.layers):
            # Exercise different ranks across layers.
            rank = layer.ranks[index % len(layer.ranks)] if fmt != "dense" else 0
            config.append(LayerChoice(fmt, rank))
        net.apply_config(config)
        concrete = net.materialise(config)
        net.eval()
        concrete.eval()
        batch = _batch()
        for ours, theirs in zip(_logits(net, batch, step_mode),
                                _logits(concrete, batch, step_mode)):
            assert np.array_equal(ours, theirs)  # bitwise, not approx

    def test_mixed_format_config_bitwise(self):
        net = _supernet()
        formats = ["dense", "stt", "ptt", "htt", "ptt"]
        config = [LayerChoice(fmt, 0 if fmt == "dense" else layer.ranks[-1])
                  for fmt, layer in zip(formats, net.space.layers)]
        net.apply_config(config)
        concrete = net.materialise(config)
        net.eval()
        concrete.eval()
        batch = _batch()
        for ours, theirs in zip(_logits(net, batch), _logits(concrete, batch)):
            assert np.array_equal(ours, theirs)

    def test_materialised_layers_have_expected_types(self):
        net = _supernet()
        config = [LayerChoice(f, 0 if f == "dense" else 4)
                  for f in ("dense", "stt", "ptt", "htt", "ptt")]
        concrete = net.materialise(config)
        kinds = {"stt": STTConv2d, "ptt": PTTConv2d, "htt": HTTConv2d}
        for name, (fmt, _) in zip(net.layer_names, net.space.encode(config)):
            module = dict(concrete.named_modules())[name]
            if fmt == "dense":
                assert not isinstance(module, (STTConv2d, PTTConv2d, HTTConv2d))
            else:
                assert isinstance(module, kinds[fmt])
        # HTT schedule and timestep count propagate.
        htt = dict(concrete.named_modules())[net.layer_names[3]]
        assert htt.timesteps == net.timesteps
        assert htt.schedule == net.layers()[3].schedule

    def test_strided_resnet_winner_merges_exactly_for_serving(self):
        """Default stride_mode='last' keeps the Eq.-6 merge exact on strided layers."""
        from repro.models.resnet import spiking_resnet18

        model = spiking_resnet18(num_classes=4, in_channels=3, timesteps=2,
                                 width_scale=0.1, rng=np.random.default_rng(0))
        net = TTSupernet(model, max_rank=8)
        net.apply_config(net.space.uniform_config("ptt", rank_fraction=0.5))
        concrete = net.materialise()
        concrete.eval()
        engine = InferenceEngine(concrete)   # deep-copies, merges (Eq. 6)
        batch = np.random.default_rng(1).random((3, 3, 16, 16)).astype(np.float32)
        reset_model_state(concrete)
        from repro.autograd.tensor import no_grad

        with no_grad():
            outputs = concrete.run_timesteps(
                np.repeat(batch[None], 2, axis=0), step_mode="fused")
            unmerged = sum(out.data for out in outputs) / len(outputs)
        merged = engine.infer(batch)
        np.testing.assert_allclose(merged, unmerged, atol=1e-5)

    def test_materialised_model_serves_merged(self):
        net = _supernet()
        net.apply_config(net.space.uniform_config("ptt"))
        concrete = net.materialise()
        engine = InferenceEngine(concrete)
        assert engine.merged_layers == len(net.layer_names)
        logits = engine.infer(np.zeros((3, 12, 12), np.float32))
        assert logits.shape == (4,) and np.isfinite(logits).all()


class TestEntangledTraining:
    def test_gradients_stay_inside_the_sampled_slice(self):
        net = _supernet()
        rank = 4
        net.apply_config(net.space.uniform_config("ptt", rank_fraction=0.0))
        config = [LayerChoice("ptt", rank) for _ in net.space.layers]
        net.apply_config(config)
        trainer = BPTTTrainer(net, TrainingConfig(timesteps=2, batch_size=4, epochs=1))
        rng = np.random.default_rng(0)
        trainer.train_step(rng.random((4, 3, 12, 12)).astype(np.float32),
                           rng.integers(0, 4, 4))
        for layer in net.layers():
            grad1 = layer.conv1.weight.grad
            assert grad1 is not None
            assert np.abs(grad1[:rank]).max() > 0          # sampled slice trains
            assert np.abs(grad1[rank:]).max() == 0         # the rest is untouched
            grad2 = layer.conv2.weight.grad
            assert np.abs(grad2[:rank, :rank]).max() > 0
            assert np.abs(grad2[rank:]).max() == 0
            assert np.abs(grad2[:, rank:]).max() == 0
            # The dense branch is inactive for a TT choice.
            assert layer.dense.weight.grad is None or \
                np.abs(layer.dense.weight.grad).max() == 0

    def test_dense_choice_trains_only_the_dense_weights(self):
        net = _supernet()
        net.apply_config(net.space.uniform_config("dense"))
        trainer = BPTTTrainer(net, TrainingConfig(timesteps=2, batch_size=4, epochs=1))
        rng = np.random.default_rng(1)
        trainer.train_step(rng.random((4, 3, 12, 12)).astype(np.float32),
                           rng.integers(0, 4, 4))
        for layer in net.layers():
            assert np.abs(layer.dense.weight.grad).max() > 0
            assert layer.conv1.weight.grad is None

    def test_larger_rank_shares_the_smaller_ranks_slice(self):
        """Training rank r moves exactly the weights every rank >= r also uses."""
        net = _supernet()
        layer = net.layers()[0]
        small = layer.conv1.weight.data[:4].copy()
        net.apply_config([LayerChoice("ptt", 4) for _ in net.space.layers])
        trainer = BPTTTrainer(net, TrainingConfig(timesteps=2, batch_size=4, epochs=1,
                                                  learning_rate=0.5))
        rng = np.random.default_rng(2)
        trainer.train_step(rng.random((4, 3, 12, 12)).astype(np.float32),
                           rng.integers(0, 4, 4))
        assert not np.array_equal(layer.conv1.weight.data[:4], small)
        # A max-rank materialisation sees the updated slice (entanglement).
        full = layer.materialise(LayerChoice("ptt", layer.max_rank))
        assert np.array_equal(full.conv1.weight.data[:4], layer.conv1.weight.data[:4])


class TestMixture:
    def test_one_hot_mixture_matches_single_choice(self):
        net = _supernet()
        net.eval()
        batch = _batch()
        choice_index = {}
        outputs_single = None
        config = []
        for layer in net.space.layers:
            config.append(LayerChoice("ptt", layer.ranks[-1]))
        net.apply_config(config)
        outputs_single = _logits(net, batch)
        from repro.autograd.tensor import Tensor

        for layer, choice in zip(net.layers(), config):
            choices = layer.layer_space.choices()
            weights = np.zeros(len(choices), dtype=np.float32)
            weights[choices.index(choice)] = 1.0
            layer.set_mixture(Tensor(weights), choices)
        outputs_mixture = _logits(net, batch)
        for single, mixture in zip(outputs_single, outputs_mixture):
            np.testing.assert_allclose(single, mixture, atol=1e-6)

    def test_mixture_gradient_reaches_the_weights(self):
        from repro.autograd.tensor import Tensor

        net = _supernet()
        weight_tensors = []
        for layer in net.space.layers:
            n = len(layer.choices())
            weight_tensors.append(Tensor(np.full(n, 1.0 / n, dtype=np.float32),
                                         requires_grad=True))
        net.set_mixture_weights(weight_tensors)
        trainer = BPTTTrainer(net, TrainingConfig(timesteps=2, batch_size=4, epochs=1))
        rng = np.random.default_rng(3)
        trainer.train_step(rng.random((4, 3, 12, 12)).astype(np.float32),
                           rng.integers(0, 4, 4))
        for weights in weight_tensors:
            assert weights.grad is not None and np.abs(weights.grad).max() > 0

    def test_mixture_blocks_runtime_signature(self):
        from repro.autograd.tensor import Tensor

        net = _supernet()
        assert net.runtime_signature() is not None
        layer = net.layers()[0]
        choices = layer.layer_space.choices()
        layer.set_mixture(Tensor(np.ones(len(choices), np.float32) / len(choices)))
        assert net.mixture_active
        assert net.runtime_signature() is None
        net.clear_mixture()
        assert net.runtime_signature() is not None

    def test_apply_config_clears_mixture(self):
        from repro.autograd.tensor import Tensor

        net = _supernet()
        layer = net.layers()[0]
        choices = layer.layer_space.choices()
        layer.set_mixture(Tensor(np.ones(len(choices), np.float32)))
        net.apply_config(net.space.uniform_config("ptt"))
        assert not net.mixture_active


class TestCompiledRuntimeIntegration:
    def test_fixed_config_captures_once_and_replays(self):
        net = _supernet()
        net.apply_config(net.space.uniform_config("ptt"))
        trainer = BPTTTrainer(net, TrainingConfig(timesteps=2, batch_size=4, epochs=1),
                              compile=True)
        rng = np.random.default_rng(4)
        data = rng.random((4, 3, 12, 12)).astype(np.float32)
        labels = rng.integers(0, 4, 4)
        flags = [trainer.train_step(data, labels)["replayed"] for _ in range(3)]
        assert flags == [0.0, 1.0, 1.0]
        stats = trainer.runtime_stats()
        assert stats["captures"] == 1 and stats["replays"] == 2

    def test_config_change_recaptures(self):
        net = _supernet()
        net.apply_config(net.space.uniform_config("ptt"))
        trainer = BPTTTrainer(net, TrainingConfig(timesteps=2, batch_size=4, epochs=1),
                              compile=True)
        rng = np.random.default_rng(5)
        data = rng.random((4, 3, 12, 12)).astype(np.float32)
        labels = rng.integers(0, 4, 4)
        trainer.train_step(data, labels)
        net.apply_config(net.space.uniform_config("stt", rank_fraction=0.5))
        assert trainer.train_step(data, labels)["replayed"] == 0.0  # re-capture
        net.apply_config(net.space.uniform_config("ptt"))
        assert trainer.train_step(data, labels)["replayed"] == 1.0  # cached plan
        stats = trainer.runtime_stats()
        assert stats["captures"] == 2 and stats["plans"] == 2

    def test_mixture_steps_run_eagerly_under_compile(self):
        from repro.autograd.tensor import Tensor

        net = _supernet()
        weight_tensors = [
            Tensor(np.ones(len(layer.choices()), np.float32) / len(layer.choices()),
                   requires_grad=True)
            for layer in net.space.layers
        ]
        net.set_mixture_weights(weight_tensors)
        trainer = BPTTTrainer(net, TrainingConfig(timesteps=2, batch_size=4, epochs=1),
                              compile=True)
        rng = np.random.default_rng(6)
        data = rng.random((4, 3, 12, 12)).astype(np.float32)
        labels = rng.integers(0, 4, 4)
        for _ in range(2):
            assert trainer.train_step(data, labels)["replayed"] == 0.0
        stats = trainer.runtime_stats()
        assert stats["captures"] == 0 and stats["eager_steps"] == 2
        # The mixture weights still receive gradients on the eager path.
        assert all(w.grad is not None for w in weight_tensors)

    def test_compiled_matches_eager_over_steps(self):
        def build():
            net = _supernet(seed=7)
            net.apply_config(net.space.uniform_config("ptt", rank_fraction=0.5))
            return net

        eager_net, compiled_net = build(), build()
        cfg = TrainingConfig(timesteps=2, batch_size=4, epochs=1, learning_rate=0.05)
        eager = BPTTTrainer(eager_net, cfg, compile=False)
        compiled = BPTTTrainer(compiled_net, cfg, compile=True)
        rng = np.random.default_rng(8)
        for _ in range(3):
            data = rng.random((4, 3, 12, 12)).astype(np.float32)
            labels = rng.integers(0, 4, 4)
            loss_e = eager.train_step(data, labels)["loss"]
            loss_c = compiled.train_step(data, labels)["loss"]
            assert loss_e == pytest.approx(loss_c, abs=1e-6)
        for p_eager, p_compiled in zip(eager_net.parameters(), compiled_net.parameters()):
            np.testing.assert_allclose(p_eager.data, p_compiled.data, atol=1e-6)


class TestLayerBehaviour:
    def test_reset_time_rewinds_htt_counter(self):
        net = _supernet(timesteps=4)
        net.apply_config([LayerChoice("htt", 4) for _ in net.space.layers])
        batch = _batch(timesteps=4)
        first = _logits(net, batch)
        second = _logits(net, batch)  # run_timesteps resets state itself
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert all(layer._t == 4 for layer in net.layers())

    def test_invalid_choice_rejected(self):
        net = _supernet()
        layer = net.layers()[0]
        with pytest.raises(ValueError):
            layer.set_choice("ptt", layer.max_rank + 1)
        with pytest.raises(ValueError):
            layer.set_choice("ptt", 0)

    def test_core_rank_must_be_admissible(self):
        conv_space = LayerSearchSpace(
            name="conv", in_channels=4, out_channels=4, kernel_size=(3, 3),
            stride=(1, 1), formats=("ptt",), ranks=(64,),
        )
        from repro.nn.layers import Conv2d

        with pytest.raises(ValueError):
            EntangledTTConv2d(Conv2d(4, 4, 3, padding=1), conv_space)

    def test_supernet_rejects_mismatched_space(self):
        model = _model()
        space = SearchSpace.for_model(model)
        # Drop one layer from the space: the supernet must notice.
        broken = SearchSpace(space.layers[:-1])
        with pytest.raises(ValueError):
            TTSupernet(_model(), space=broken)
