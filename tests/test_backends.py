"""Tests for the kernel backend registry and native codegen
(:mod:`repro.runtime.backends`).

Guarantees under test:

* **The NumPy backend is the parity oracle**: every native backend is
  compared against it with the same harness as ``tests/test_optimizer.py``
  — train O1 (losses, gradients, parameters after SGD) and serve O2
  (logits) across architectures, TT variants and dtypes.
* **Graceful degradation**: unknown backend names raise at construction;
  a registered-but-unavailable backend (numba not installed) resolves to
  the reference backend; a backend that declines every node produces a
  plan that still replays correctly, with the declines counted as
  fallbacks and labelled ``@fallback``.
* **Numba-mode sources are plain valid Python**: the flat-loop kernels are
  exec'd (without ``@njit``) and verified against the reference kernels on
  real captured nodes, so their semantics are covered on machines without
  numba.
* **Accounting**: ``runtime_stats()["backend"]`` counts native/fallback
  nodes and replays; profiler hot-op rows carry the executing backend;
  the codegen backend keeps the zero-steady-state-allocation property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.tensor import Workspace, _unbroadcast
from repro.metrics.profiler import kernel_backend, summarize_runtime
from repro.models.builder import convert_to_tt
from repro.models.resnet import spiking_resnet18
from repro.models.vgg import spiking_vgg9
from repro.runtime import (
    Backend,
    CompiledForward,
    CompiledTrainStep,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.runtime.backends.codegen import (
    UnsupportedNode,
    chain_program,
    compile_python,
    emit_chain_numba,
    emit_chain_python,
    emit_lif_numba,
    emit_lif_python,
    lif_config,
    verify_kernel,
)
from repro.runtime.backends.numba_backend import (
    NUMBA_AVAILABLE,
    _NumbaChainKernel,
    _NumbaLIFKernel,
)
from repro.serve.engine import InferenceEngine
from repro.snn.loss import mean_output_cross_entropy
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer

TIMESTEPS = 2
NUM_CLASSES = 4
#: ISSUE bound on native-vs-reference logit drift per dtype
DRIFT = {"float32": 1e-3, "float64": 1e-6}
#: native backends the parity matrix exercises on this machine
NATIVE_BACKENDS = ["codegen"] + (["numba"] if NUMBA_AVAILABLE else [])


def _make_model(arch: str, variant: str, seed: int = 0):
    rng = np.random.default_rng(seed)
    if arch == "vgg9":
        model = spiking_vgg9(num_classes=NUM_CLASSES, in_channels=3,
                             timesteps=TIMESTEPS, width_scale=0.1, rng=rng)
    else:
        model = spiking_resnet18(num_classes=NUM_CLASSES, in_channels=3,
                                 timesteps=TIMESTEPS, width_scale=0.07, rng=rng)
    convert_to_tt(model, variant=variant, rank=4, timesteps=TIMESTEPS)
    return model


def _make_pair(arch: str, variant: str):
    reference = _make_model(arch, variant)
    native = _make_model(arch, variant)
    native.load_state_dict(reference.state_dict())
    return reference, native


def _batches(steps: int = 3, n: int = 2, size: int = 8, seed: int = 7):
    rng = np.random.default_rng(seed)
    return [(rng.random((n, 3, size, size)).astype(np.float32),
             rng.integers(0, NUM_CLASSES, n)) for _ in range(steps)]


def _trainer(model, **kwargs):
    config = TrainingConfig(timesteps=TIMESTEPS, batch_size=2, learning_rate=0.05)
    return BPTTTrainer(model, config, compile=True, optimize="O1", **kwargs)


def _unsealed_plan(backend: str = "numpy"):
    """One captured (never replayed) train plan — slot arrays still attached."""
    trainer = _trainer(_make_model("vgg9", "ptt"), backend=backend)
    data, labels = _batches(steps=1)[0]
    trainer.train_step(data, labels)
    plan = next(iter(trainer._compiled._plans.values()))[0]
    return trainer, plan


# ---------------------------------------------------------------------------
# registry and graceful degradation
# ---------------------------------------------------------------------------


def test_registry_names_and_reference():
    names = backend_names()
    for expected in ("numpy", "codegen", "numba"):
        assert expected in names
    # The dependency-free backends are available everywhere; numba may not be.
    assert "numpy" in available_backends()
    assert "codegen" in available_backends()
    assert get_backend("numpy").is_reference
    assert not get_backend("codegen").is_reference
    assert resolve_backend("numpy").name == "numpy"
    assert resolve_backend("codegen").name == "codegen"


def test_auto_resolves_to_fastest_available():
    resolved = resolve_backend("auto")
    assert resolved.name == ("numba" if NUMBA_AVAILABLE else "codegen")


def test_unknown_backend_raises_everywhere():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("cuda")
    with pytest.raises(ValueError, match="unknown backend"):
        CompiledForward(lambda t: t, backend="cuda")
    with pytest.raises(ValueError, match="unknown backend"):
        _trainer(_make_model("vgg9", "ptt"), backend="cuda")
    with pytest.raises(ValueError, match="unknown backend"):
        InferenceEngine(_make_model("vgg9", "ptt"), compile=True, backend="cuda")


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
def test_unavailable_numba_degrades_to_reference():
    """Requesting numba on a machine without it must still work end to end."""
    assert "numba" not in available_backends()
    assert resolve_backend("numba").name == "numpy"
    reference, native = _make_pair("vgg9", "ptt")
    t_ref = _trainer(reference)
    t_nb = _trainer(native, backend="numba")
    for data, labels in _batches(steps=2):
        s0 = t_ref.train_step(data, labels)
        s1 = t_nb.train_step(data, labels)
        assert s0["loss"] == s1["loss"]
    stats = t_nb.runtime_stats()["backend"]
    assert stats["requested"] == "numba"
    assert stats["active"] == "numpy"
    assert stats["native_nodes"] == 0
    assert stats["fallback_nodes"] == 0


def test_kernel_backend_label_parsing():
    assert kernel_backend("ew_chain") == "numpy"
    assert kernel_backend("ew_chain@codegen") == "codegen"
    assert kernel_backend("bwd:fn_cached:_FusedLIFSequence@numba") == "numba"
    assert kernel_backend("ew_chain@fallback") == "fallback"


def test_invalid_dtype_policy_rejected():
    with pytest.raises(ValueError, match="float32 or float64"):
        CompiledForward(lambda t: t, dtype="int32")
    with pytest.raises(ValueError, match="float32 or float64"):
        _make_model("vgg9", "ptt").astype("float16")


# ---------------------------------------------------------------------------
# parity matrix: native backends vs the NumPy oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", NATIVE_BACKENDS)
@pytest.mark.parametrize("arch,variant", [
    ("vgg9", "stt"), ("vgg9", "ptt"), ("vgg9", "htt"), ("resnet18", "ptt"),
])
def test_native_train_matches_numpy_backend(backend, arch, variant):
    """Native O1 training tracks the reference backend across K SGD steps."""
    reference, native = _make_pair(arch, variant)
    t_ref = _trainer(reference)
    t_nat = _trainer(native, backend=backend)
    tol = DRIFT["float32"] if backend == "numba" else 1e-6
    for step, (data, labels) in enumerate(_batches(steps=3)):
        s0 = t_ref.train_step(data, labels)
        s1 = t_nat.train_step(data, labels)
        assert abs(s0["loss"] - s1["loss"]) <= tol, f"step {step}"
    for (name, p0), (_, p1) in zip(reference.named_parameters(),
                                   native.named_parameters()):
        np.testing.assert_allclose(p1.grad, p0.grad, atol=tol, err_msg=f"grad {name}")
        np.testing.assert_allclose(p1.data, p0.data, atol=tol, err_msg=f"param {name}")
    stats = t_nat.runtime_stats()["backend"]
    assert stats["active"] == backend
    assert stats["native_nodes"] > 0
    assert stats["native_replays"] > 0


def test_codegen_train_is_bit_identical():
    """The python-mode kernels replay the exact reference ufunc sequence."""
    reference, native = _make_pair("vgg9", "ptt")
    t_ref = _trainer(reference)
    t_cg = _trainer(native, backend="codegen")
    for data, labels in _batches(steps=4):
        s0 = t_ref.train_step(data, labels)
        s1 = t_cg.train_step(data, labels)
        assert s0["loss"] == s1["loss"]
    for (name, p0), (_, p1) in zip(reference.named_parameters(),
                                   native.named_parameters()):
        assert np.array_equal(p0.grad, p1.grad), f"grad {name}"
        assert np.array_equal(p0.data, p1.data), f"param {name}"


@pytest.mark.parametrize("backend", NATIVE_BACKENDS)
@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_native_train_dtype_policy(backend, dtype):
    """The dtype knob carries through params, plans and native kernels."""
    reference, native = _make_pair("vgg9", "ptt")
    t_ref = _trainer(reference, dtype=dtype)
    t_nat = _trainer(native, backend=backend, dtype=dtype)
    for data, labels in _batches(steps=2):
        s0 = t_ref.train_step(data, labels)
        s1 = t_nat.train_step(data, labels)
        assert abs(s0["loss"] - s1["loss"]) <= DRIFT[dtype]
    assert next(native.parameters()).data.dtype == np.dtype(dtype)
    stats = t_nat.runtime_stats()
    assert stats["dtype"] == dtype
    assert stats["backend"]["native_nodes"] > 0


@pytest.mark.parametrize("backend", NATIVE_BACKENDS)
@pytest.mark.parametrize("arch", ["vgg9", "resnet18"])
@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_native_serve_matches_numpy_backend(backend, arch, dtype):
    """O2 serve logits stay within the per-dtype drift bound of the oracle."""
    reference, native = _make_pair(arch, "ptt")
    e_ref = InferenceEngine(reference, compile=True, dtype=dtype)
    e_nat = InferenceEngine(native, compile=True, backend=backend, dtype=dtype)
    rng = np.random.default_rng(3)
    for n in (2, 2, 1):
        batch = rng.random((n, 3, 8, 8)).astype(np.float32)
        l0 = e_ref.infer(batch)
        l1 = e_nat.infer(batch)
        assert l1.dtype == np.dtype(dtype)
        np.testing.assert_allclose(l1, l0, atol=DRIFT[dtype])
    stats = e_nat.runtime_stats()["backend"]
    assert stats["active"] == backend
    assert stats["native_nodes"] > 0


# ---------------------------------------------------------------------------
# per-node fallback and accounting
# ---------------------------------------------------------------------------


class _DecliningBackend(Backend):
    """Eligible for everything the codegen backend is, compiles nothing."""

    name = "declining-test"

    def eligible(self, node) -> bool:
        return get_backend("codegen").eligible(node)


def test_declining_backend_counts_fallbacks_and_stays_correct():
    register_backend(_DecliningBackend())
    reference, native = _make_pair("vgg9", "ptt")
    t_ref = _trainer(reference)
    t_dec = _trainer(native, backend="declining-test", profile=True)
    for data, labels in _batches(steps=3):
        s0 = t_ref.train_step(data, labels)
        s1 = t_dec.train_step(data, labels)
        assert s0["loss"] == s1["loss"]           # fallback IS the reference
    stats = t_dec.runtime_stats()["backend"]
    assert stats["native_nodes"] == 0
    assert stats["fallback_nodes"] > 0
    assert stats["native_replays"] == 0
    assert stats["fallback_replays"] == stats["fallback_nodes"] * 2
    report = summarize_runtime(t_dec._compiled)
    backends_seen = {row["backend"] for row in report["hot_ops"]}
    assert "fallback" in backends_seen or all(
        row["backend"] == "numpy" for row in report["hot_ops"])
    plan = next(iter(t_dec._compiled._plans.values()))[0]
    assert any(label.endswith("@fallback") for label in plan._fwd_labels)


def test_native_labels_and_profiler_attribution():
    trainer = _trainer(_make_model("vgg9", "ptt"), backend="codegen", profile=True)
    for data, labels in _batches(steps=3):
        trainer.train_step(data, labels)
    plan = next(iter(trainer._compiled._plans.values()))[0]
    assert any(label.endswith("@codegen") for label in plan._fwd_labels)
    assert any(label.startswith("bwd:") and label.endswith("@codegen")
               for label in plan._bwd_labels)
    stats = trainer.runtime_stats()["backend"]
    assert stats["native_replays"] == stats["native_nodes"] * 2
    report = summarize_runtime(trainer._compiled)
    assert any(row["backend"] == "codegen" for row in report["hot_ops"])


def test_codegen_plans_keep_zero_steady_state_allocations():
    trainer = _trainer(_make_model("vgg9", "ptt"), backend="codegen")
    batches = _batches(steps=6)
    for data, labels in batches[:3]:
        trainer.train_step(data, labels)
    arena = trainer._compiled.arena
    allocated = arena.allocated
    for data, labels in batches[3:]:
        trainer.train_step(data, labels)
    assert arena.allocated == allocated


# ---------------------------------------------------------------------------
# numba-mode sources are plain valid Python (semantics covered without numba)
# ---------------------------------------------------------------------------


def test_numba_chain_sources_verify_on_captured_nodes():
    """Every uniform-shape captured chain: exec'd flat-loop kernel == reference."""
    _, plan = _unsealed_plan()
    chains = [(position, node) for position, node in enumerate(plan.nodes)
              if node is not None and node.op == "ew_chain"]
    assert chains, "expected fused ew_chain nodes in a VGG-9 O1 train plan"
    verified = declined = 0
    bwd_ids = {id(node) for node in plan._bwd_nodes}
    for _, node in chains:
        program = chain_program(node, plan.slots)
        needs = tuple(plan._needs[i] for i in node.inputs)
        try:
            source, kinds = emit_chain_numba(program, needs)
        except UnsupportedNode:
            declined += 1                     # broadcast chain: per-node fallback
            continue
        funcs = compile_python(source)        # NOT jitted: plain Python
        impl = _NumbaChainKernel(funcs, program, kinds, needs,
                                 id(node) in bwd_ids)
        assert verify_kernel(impl, node, plan.slots, needs, id(node) in bwd_ids)
        verified += 1
    assert verified + declined == len(chains)


def test_numba_lif_sources_verify_on_captured_nodes():
    """Exec'd flat-loop LIF recurrences match the reference on real nodes."""
    _, plan = _unsealed_plan()
    from repro.snn.neurons import _FusedLIFSequence

    lif_nodes = [node for node in plan.nodes
                 if node is not None and node.op == "fn_cached"
                 and node.attrs.get("cls") is _FusedLIFSequence]
    assert lif_nodes, "expected specialized LIF nodes in a VGG-9 O1 train plan"
    bwd_ids = {id(node) for node in plan._bwd_nodes}
    for node in lif_nodes:
        cfg = lif_config(node, plan.slots)
        funcs = compile_python(emit_lif_numba(cfg))
        impl = _NumbaLIFKernel(funcs, cfg)
        needs = tuple(plan._needs[i] for i in node.inputs)
        assert verify_kernel(impl, node, plan.slots, needs, id(node) in bwd_ids)


def _toy_program(dtype, in_shapes, step_shapes):
    """A fabricated chain program touching most of the emitted op set."""
    dtype = np.dtype(dtype)
    ops = [("mul", (0, 1)), ("add", (-1, 2)), ("tanh", (-1,)),
           ("sigmoid", (-1,)), ("clip", (-1,)), ("pow", (-1,)),
           ("relu", (-1,)), ("abs", (-1,)), ("neg", (-1,))]
    steps = []
    for index, (op, ins) in enumerate(ops):
        step = {"op": op, "ins": ins, "shape": step_shapes[index], "dtype": dtype}
        if op == "clip":
            step["low"], step["high"] = -0.9, 0.9
        elif op == "pow":
            step["exponent"] = 2.0
        steps.append(step)
    return {
        "steps": steps,
        "n_inputs": len(in_shapes),
        "in_shapes": list(in_shapes),
        "in_dtypes": [dtype] * len(in_shapes),
        "out_shape": steps[-1]["shape"],
        "out_dtype": dtype,
    }


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_numba_chain_source_matches_python_mode(dtype):
    """Flat-loop and ufunc-sequence emissions agree on a fabricated chain
    with array and scalar externals (scalar grads use the accumulator path)."""
    shape = (2, 6)
    program = _toy_program(dtype, [shape, shape, (1, 1)], [shape] * 9)
    needs = (True, True, True)
    rng = np.random.default_rng(9)
    ins = [rng.standard_normal(s).astype(dtype) + 0.5
           for s in program["in_shapes"]]
    g = rng.standard_normal(shape).astype(dtype)

    py = compile_python(emit_chain_python(program, needs))
    ws = Workspace()
    want = np.array(py["cg_fwd"](ins, ws))
    want_grads = py["cg_bwd"](g, ins, ws)

    source, kinds = emit_chain_numba(program, needs)
    assert kinds == ["array", "array", "scalar"]
    impl = _NumbaChainKernel(compile_python(source), program, kinds, needs, True)
    got, token = impl.forward(ins, {})
    rtol = 1e-5 if dtype == "float32" else 1e-12
    np.testing.assert_allclose(got, want, rtol=rtol, atol=rtol)
    got_grads = impl.backward(g, ins, got, token, {}, needs)
    for k, shape in enumerate(program["in_shapes"]):
        # The planner unbroadcasts external grads to the slot shape after the
        # kernel returns; mirror that here so both modes are comparable.
        np.testing.assert_allclose(
            _unbroadcast(np.asarray(got_grads[k]), shape),
            _unbroadcast(np.asarray(want_grads[k]), shape),
            rtol=rtol, atol=rtol, err_msg=f"input {k}")


def test_numba_chain_emitter_declines_broadcast_and_mixed_dtype():
    needs = (True, True, True)
    broadcast = _toy_program("float32", [(2, 6), (2, 1), (1, 1)], [(2, 6)] * 9)
    with pytest.raises(UnsupportedNode, match="broadcast"):
        emit_chain_numba(broadcast, needs)
    mixed = _toy_program("float32", [(2, 6), (2, 6), (1, 1)], [(2, 6)] * 9)
    mixed["in_dtypes"][1] = np.dtype("float64")
    with pytest.raises(UnsupportedNode, match="mixed"):
        emit_chain_numba(mixed, needs)


@pytest.mark.parametrize("hard,detach", [(True, False), (False, False), (True, True)])
def test_numba_lif_source_matches_python_mode(hard, detach):
    """Flat-loop LIF recurrence == unrolled ufunc sequence for every reset
    and detach branch the emitter specializes."""
    shape, dtype = (3, 2, 4), np.dtype(np.float32)
    cfg = {"shape": shape, "timesteps": 3, "frame": shape[1:], "size": 8,
           "dtype": dtype, "tau": 0.5, "vth": 1.0, "width": 1.0,
           "hard": hard, "detach": detach}
    rng = np.random.default_rng(11)
    cur = (rng.standard_normal(shape) * 2).astype(dtype)
    g = rng.standard_normal(shape).astype(dtype)

    py = compile_python(emit_lif_python(cfg))
    ws = Workspace()
    want_spk = np.array(py["lif_fwd"](cur, ws))
    want_gin = np.array(py["lif_bwd"](g, ws))

    impl = _NumbaLIFKernel(compile_python(emit_lif_numba(cfg)), cfg)
    got_spk, token = impl.forward([cur], {})
    np.testing.assert_array_equal(got_spk, want_spk)
    (got_gin,) = impl.backward(g, [cur], got_spk, token, {}, (True,))
    np.testing.assert_allclose(got_gin, want_gin, rtol=1e-6, atol=1e-6)
    infer_spk = impl.forward_inference([cur], {})
    np.testing.assert_array_equal(infer_spk, want_spk)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
def test_numba_backend_jit_smoke():
    """With numba present, the jitted backend trains within the drift bound."""
    reference, native = _make_pair("vgg9", "ptt")
    t_ref = _trainer(reference)
    t_nb = _trainer(native, backend="numba")
    for data, labels in _batches(steps=2):
        s0 = t_ref.train_step(data, labels)
        s1 = t_nb.train_step(data, labels)
        assert abs(s0["loss"] - s1["loss"]) <= DRIFT["float32"]
    stats = t_nb.runtime_stats()["backend"]
    assert stats["active"] == "numba"
    assert stats["native_nodes"] > 0


# ---------------------------------------------------------------------------
# dtype plumbing satellites
# ---------------------------------------------------------------------------


def test_workspace_buffers_keyed_by_dtype():
    ws = Workspace()
    f32 = ws.buf("k", (4,), "float32")
    f64 = ws.buf("k", (4,), "float64")
    assert f32.dtype == np.float32 and f64.dtype == np.float64
    assert f32 is not f64
    assert ws.buf("k", (4,), "float32") is f32
    assert ws.buf("k", (4,), "float64") is f64
    assert ws.buf("k", (2, 2), "float32") is not f32   # shape is part of the key


def test_module_astype_casts_params_and_buffers():
    model = _make_model("vgg9", "ptt")
    out = model.astype("float64")
    assert out is model
    assert all(p.data.dtype == np.float64 for p in model.parameters())
    model.astype(np.float32)
    assert all(p.data.dtype == np.float32 for p in model.parameters())


def test_engine_pad_buffers_keyed_by_dtype():
    """A float64 engine and a float32 engine never share pad storage."""
    e32 = InferenceEngine(_make_model("vgg9", "ptt"), compile=True)
    e64 = InferenceEngine(_make_model("vgg9", "ptt"), compile=True,
                          dtype="float64", backend="codegen")
    rng = np.random.default_rng(21)
    batch = rng.random((3, 3, 8, 8)).astype(np.float32)   # pads to 4
    l32 = e32.infer(batch)
    l64 = e64.infer(batch)
    assert l32.dtype == np.float32 and l64.dtype == np.float64
    assert all(key[1] == "<f4" for key in e32._pad_buffers)
    assert all(key[1] == "<f8" for key in e64._pad_buffers)
