"""Property-based tests (hypothesis) for core invariants.

These cover the mathematical properties the whole reproduction hinges on:
broadcasting-safe gradient accumulation, convolution linearity, exactness of
the full-rank TT decomposition, equivalence of the PTT module and its merged
dense kernel, binary spike outputs, and monotonicity of the compression
formulas.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd.conv import conv2d
from repro.autograd.tensor import Tensor
from repro.snn.neurons import LIFNeuron
from repro.tt.compression import dense_conv_params, tt_conv_params
from repro.tt.decomposition import max_tt_ranks, tt_cores_to_dense, tt_decompose_conv
from repro.tt.layers import PTTConv2d, STTConv2d
from repro.tt.reconstruct import merge_tt_layer


# Shared strategies ----------------------------------------------------------

small_dims = st.integers(min_value=2, max_value=8)
seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def _array(rng, *shape):
    return rng.standard_normal(shape).astype(np.float32)


class TestAutogradProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rows=small_dims, cols=small_dims)
    def test_sum_gradient_is_ones(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        x = Tensor(_array(rng, rows, cols), requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((rows, cols)))

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=small_dims)
    def test_addition_gradient_splits_equally(self, seed, n):
        rng = np.random.default_rng(seed)
        a = Tensor(_array(rng, n), requires_grad=True)
        b = Tensor(_array(rng, n), requires_grad=True)
        ((a + b) * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, b.grad)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n=small_dims, m=small_dims)
    def test_broadcast_gradient_shape_matches_leaf(self, seed, n, m):
        rng = np.random.default_rng(seed)
        a = Tensor(_array(rng, n, m), requires_grad=True)
        b = Tensor(_array(rng, 1, m), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (n, m)
        assert b.grad.shape == (1, m)


class TestConvolutionProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, channels=st.integers(2, 5), size=st.integers(4, 9))
    def test_convolution_is_linear_in_input(self, seed, channels, size):
        """conv(a*x + b*y) == a*conv(x) + b*conv(y)."""
        rng = np.random.default_rng(seed)
        w = Tensor(_array(rng, 4, channels, 3, 3))
        x = Tensor(_array(rng, 1, channels, size, size))
        y = Tensor(_array(rng, 1, channels, size, size))
        combined = conv2d(Tensor(2.0 * x.data + 3.0 * y.data), w, padding=1)
        separate = 2.0 * conv2d(x, w, padding=1).data + 3.0 * conv2d(y, w, padding=1).data
        np.testing.assert_allclose(combined.data, separate, rtol=1e-3, atol=1e-3)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, out_c=st.integers(2, 6))
    def test_convolution_of_zero_input_is_zero(self, seed, out_c):
        rng = np.random.default_rng(seed)
        w = Tensor(_array(rng, out_c, 3, 3, 3))
        x = Tensor(np.zeros((1, 3, 6, 6), dtype=np.float32))
        assert np.all(conv2d(x, w, padding=1).data == 0)


class TestTTProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=seeds, in_c=st.integers(2, 8), out_c=st.integers(2, 8))
    def test_full_rank_decomposition_is_exact(self, seed, in_c, out_c):
        rng = np.random.default_rng(seed)
        w = _array(rng, out_c, in_c, 3, 3)
        cores = tt_decompose_conv(w, rank=max_tt_ranks(in_c, out_c, (3, 3)))
        np.testing.assert_allclose(tt_cores_to_dense(cores), w, atol=1e-3)

    @settings(max_examples=12, deadline=None)
    @given(seed=seeds, in_c=st.integers(2, 8), out_c=st.integers(2, 8),
           rank=st.integers(1, 6))
    def test_truncation_error_bounded_by_one(self, seed, in_c, out_c, rank):
        """The relative Frobenius error of a TT-SVD truncation never exceeds ~1."""
        rng = np.random.default_rng(seed)
        w = _array(rng, out_c, in_c, 3, 3)
        cores = tt_decompose_conv(w, rank=rank)
        assert 0.0 <= cores.relative_error <= 1.0 + 1e-6

    @settings(max_examples=12, deadline=None)
    @given(seed=seeds, in_c=st.integers(3, 8), out_c=st.integers(3, 8), rank=st.integers(1, 4))
    def test_ptt_merge_equivalence_property(self, seed, in_c, out_c, rank):
        """For any shape/rank, the merged dense kernel reproduces the PTT forward (stride 1)."""
        rng = np.random.default_rng(seed)
        layer = PTTConv2d(in_c, out_c, 3, rank=rank, rng=rng)
        merged = merge_tt_layer(layer)
        x = Tensor(_array(rng, 1, in_c, 7, 7))
        np.testing.assert_allclose(layer(x).data, merged(x).data, atol=2e-4, rtol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(in_c=st.integers(8, 256), out_c=st.integers(8, 256), rank=st.integers(1, 32))
    def test_tt_params_fewer_than_dense_when_rank_small(self, in_c, out_c, rank):
        """Whenever r < 3*I*O/(I+O+6r) the TT layer has fewer parameters; check the
        paper's regime (rank well below the channel counts) always compresses."""
        if rank * 4 > min(in_c, out_c):
            return  # outside the compression regime the claim need not hold
        dense = dense_conv_params(in_c, out_c, (3, 3))
        tt = tt_conv_params(in_c, out_c, (3, 3), (rank, rank, rank))
        assert tt < dense

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, rank=st.integers(1, 4))
    def test_stt_and_ptt_same_parameter_count(self, seed, rank):
        rng = np.random.default_rng(seed)
        stt = STTConv2d(6, 10, 3, rank=rank, rng=rng)
        ptt = PTTConv2d(6, 10, 3, rank=rank, rng=rng)
        assert stt.num_parameters() == ptt.num_parameters()


class TestLIFProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, tau=st.floats(0.05, 1.0), threshold=st.floats(0.1, 2.0))
    def test_spikes_always_binary(self, seed, tau, threshold):
        rng = np.random.default_rng(seed)
        lif = LIFNeuron(tau_m=tau, v_threshold=threshold)
        for _ in range(3):
            spikes = lif(Tensor(_array(rng, 2, 6)))
            assert set(np.unique(spikes.data)).issubset({0.0, 1.0})

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_hard_reset_membrane_below_threshold_after_spike(self, seed):
        rng = np.random.default_rng(seed)
        lif = LIFNeuron(tau_m=0.25, v_threshold=0.5, hard_reset=True)
        spikes = lif(Tensor(np.abs(_array(rng, 1, 8)) + 0.6))     # everything spikes
        assert np.all(spikes.data == 1.0)
        assert np.all(lif.membrane_potential.data == 0.0)

    @settings(max_examples=15, deadline=None)
    @given(scale=st.floats(0.0, 0.36))
    def test_never_spikes_below_threshold(self, scale):
        lif = LIFNeuron(tau_m=0.25, v_threshold=0.5)
        current = Tensor(np.full((1, 4), scale, dtype=np.float32))
        total = 0.0
        for _ in range(5):
            total += float(lif(current).data.sum())
        # Steady-state membrane = scale / (1 - tau_m) = scale / 0.75 <= 0.48,
        # strictly below the 0.5 threshold, so no spike may ever fire.
        assert total == 0.0
