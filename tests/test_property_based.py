"""Property-based tests (hypothesis) for core invariants.

These cover the mathematical properties the whole reproduction hinges on:
broadcasting-safe gradient accumulation, convolution linearity, exactness of
the full-rank TT decomposition, equivalence of the PTT module and its merged
dense kernel, binary spike outputs, and monotonicity of the compression
formulas.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd.conv import conv2d
from repro.autograd.tensor import Tensor
from repro.snn.neurons import LIFNeuron
from repro.tt.compression import dense_conv_params, tt_conv_params
from repro.tt.decomposition import max_tt_ranks, tt_cores_to_dense, tt_decompose_conv
from repro.tt.layers import PTTConv2d, STTConv2d
from repro.tt.reconstruct import merge_tt_layer


# Shared strategies ----------------------------------------------------------

small_dims = st.integers(min_value=2, max_value=8)
seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def _array(rng, *shape):
    return rng.standard_normal(shape).astype(np.float32)


class TestAutogradProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rows=small_dims, cols=small_dims)
    def test_sum_gradient_is_ones(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        x = Tensor(_array(rng, rows, cols), requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((rows, cols)))

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n=small_dims)
    def test_addition_gradient_splits_equally(self, seed, n):
        rng = np.random.default_rng(seed)
        a = Tensor(_array(rng, n), requires_grad=True)
        b = Tensor(_array(rng, n), requires_grad=True)
        ((a + b) * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, b.grad)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n=small_dims, m=small_dims)
    def test_broadcast_gradient_shape_matches_leaf(self, seed, n, m):
        rng = np.random.default_rng(seed)
        a = Tensor(_array(rng, n, m), requires_grad=True)
        b = Tensor(_array(rng, 1, m), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (n, m)
        assert b.grad.shape == (1, m)


class TestConvolutionProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, channels=st.integers(2, 5), size=st.integers(4, 9))
    def test_convolution_is_linear_in_input(self, seed, channels, size):
        """conv(a*x + b*y) == a*conv(x) + b*conv(y)."""
        rng = np.random.default_rng(seed)
        w = Tensor(_array(rng, 4, channels, 3, 3))
        x = Tensor(_array(rng, 1, channels, size, size))
        y = Tensor(_array(rng, 1, channels, size, size))
        combined = conv2d(Tensor(2.0 * x.data + 3.0 * y.data), w, padding=1)
        separate = 2.0 * conv2d(x, w, padding=1).data + 3.0 * conv2d(y, w, padding=1).data
        np.testing.assert_allclose(combined.data, separate, rtol=1e-3, atol=1e-3)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, out_c=st.integers(2, 6))
    def test_convolution_of_zero_input_is_zero(self, seed, out_c):
        rng = np.random.default_rng(seed)
        w = Tensor(_array(rng, out_c, 3, 3, 3))
        x = Tensor(np.zeros((1, 3, 6, 6), dtype=np.float32))
        assert np.all(conv2d(x, w, padding=1).data == 0)


class TestTTProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=seeds, in_c=st.integers(2, 8), out_c=st.integers(2, 8))
    def test_full_rank_decomposition_is_exact(self, seed, in_c, out_c):
        rng = np.random.default_rng(seed)
        w = _array(rng, out_c, in_c, 3, 3)
        cores = tt_decompose_conv(w, rank=max_tt_ranks(in_c, out_c, (3, 3)))
        np.testing.assert_allclose(tt_cores_to_dense(cores), w, atol=1e-3)

    @settings(max_examples=12, deadline=None)
    @given(seed=seeds, in_c=st.integers(2, 8), out_c=st.integers(2, 8),
           rank=st.integers(1, 6))
    def test_truncation_error_bounded_by_one(self, seed, in_c, out_c, rank):
        """The relative Frobenius error of a TT-SVD truncation never exceeds ~1."""
        rng = np.random.default_rng(seed)
        w = _array(rng, out_c, in_c, 3, 3)
        cores = tt_decompose_conv(w, rank=rank)
        assert 0.0 <= cores.relative_error <= 1.0 + 1e-6

    @settings(max_examples=12, deadline=None)
    @given(seed=seeds, in_c=st.integers(3, 8), out_c=st.integers(3, 8), rank=st.integers(1, 4))
    def test_ptt_merge_equivalence_property(self, seed, in_c, out_c, rank):
        """For any shape/rank, the merged dense kernel reproduces the PTT forward (stride 1)."""
        rng = np.random.default_rng(seed)
        layer = PTTConv2d(in_c, out_c, 3, rank=rank, rng=rng)
        merged = merge_tt_layer(layer)
        x = Tensor(_array(rng, 1, in_c, 7, 7))
        np.testing.assert_allclose(layer(x).data, merged(x).data, atol=2e-4, rtol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(in_c=st.integers(8, 256), out_c=st.integers(8, 256), rank=st.integers(1, 32))
    def test_tt_params_fewer_than_dense_when_rank_small(self, in_c, out_c, rank):
        """Whenever r < 3*I*O/(I+O+6r) the TT layer has fewer parameters; check the
        paper's regime (rank well below the channel counts) always compresses."""
        if rank * 4 > min(in_c, out_c):
            return  # outside the compression regime the claim need not hold
        dense = dense_conv_params(in_c, out_c, (3, 3))
        tt = tt_conv_params(in_c, out_c, (3, 3), (rank, rank, rank))
        assert tt < dense

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, rank=st.integers(1, 4))
    def test_stt_and_ptt_same_parameter_count(self, seed, rank):
        rng = np.random.default_rng(seed)
        stt = STTConv2d(6, 10, 3, rank=rank, rng=rng)
        ptt = PTTConv2d(6, 10, 3, rank=rank, rng=rng)
        assert stt.num_parameters() == ptt.num_parameters()


class TestLIFProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, tau=st.floats(0.05, 1.0), threshold=st.floats(0.1, 2.0))
    def test_spikes_always_binary(self, seed, tau, threshold):
        rng = np.random.default_rng(seed)
        lif = LIFNeuron(tau_m=tau, v_threshold=threshold)
        for _ in range(3):
            spikes = lif(Tensor(_array(rng, 2, 6)))
            assert set(np.unique(spikes.data)).issubset({0.0, 1.0})

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_hard_reset_membrane_below_threshold_after_spike(self, seed):
        rng = np.random.default_rng(seed)
        lif = LIFNeuron(tau_m=0.25, v_threshold=0.5, hard_reset=True)
        spikes = lif(Tensor(np.abs(_array(rng, 1, 8)) + 0.6))     # everything spikes
        assert np.all(spikes.data == 1.0)
        assert np.all(lif.membrane_potential.data == 0.0)

    @settings(max_examples=15, deadline=None)
    @given(scale=st.floats(0.0, 0.36))
    def test_never_spikes_below_threshold(self, scale):
        lif = LIFNeuron(tau_m=0.25, v_threshold=0.5)
        current = Tensor(np.full((1, 4), scale, dtype=np.float32))
        total = 0.0
        for _ in range(5):
            total += float(lif(current).data.sum())
        # Steady-state membrane = scale / (1 - tau_m) = scale / 0.75 <= 0.48,
        # strictly below the 0.5 threshold, so no spike may ever fire.
        assert total == 0.0


class TestGraphOptimizerProperties:
    """Fusion/folding correctness of the plan-time graph optimizer
    (:mod:`repro.runtime.optimizer`) across random shapes, strides, step
    modes and TT formats."""

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, in_c=st.integers(3, 8), out_c=st.integers(3, 8),
           rank=st.integers(1, 4), size=st.integers(6, 10),
           stride=st.integers(1, 2), stride_mode=st.sampled_from(["first", "last"]),
           variant=st.sampled_from(["stt", "ptt"]))
    def test_tt_fold_matches_eager_forward(self, seed, in_c, out_c, rank, size,
                                           stride, stride_mode, variant):
        """O2-compiled TT layers (folded per Eq. 6 where exact) reproduce the
        eager forward for any shape/rank/stride/stride-mode combination."""
        from repro.tt.layers import PTTConv2d, STTConv2d

        rng = np.random.default_rng(seed)
        cls = STTConv2d if variant == "stt" else PTTConv2d
        layer = cls(in_c, out_c, 3, rank=rank, stride=stride,
                    stride_mode=stride_mode, rng=rng)
        layer.eval()
        compiled = layer.compile(optimize="O2")
        x = _array(rng, 2, in_c, size, size)
        compiled(x)                       # capture
        replayed = compiled(x)            # optimized replay
        from repro.autograd.tensor import no_grad
        with no_grad():
            want = layer(Tensor(x)).data
        np.testing.assert_allclose(replayed, want, atol=2e-4, rtol=1e-3)

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, timesteps=st.integers(1, 4), n=st.integers(1, 3),
           size=st.sampled_from([8, 12]), variant=st.sampled_from(["stt", "ptt", "htt"]),
           mode=st.sampled_from(["single", "fused"]))
    def test_o1_train_grads_match_o0_any_shape(self, seed, timesteps, n, size,
                                               variant, mode):
        """One O1-compiled train step reproduces the O0 loss and gradients to
        <= 1e-6 for random batch shapes, timestep counts, formats and step
        modes."""
        from repro.models.vgg import spiking_vgg9
        from repro.models.builder import convert_to_tt
        from repro.training.config import TrainingConfig
        from repro.training.trainer import BPTTTrainer

        rng = np.random.default_rng(seed)
        models = []
        for _ in range(2):
            model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=timesteps,
                                 width_scale=0.1, rng=np.random.default_rng(seed))
            convert_to_tt(model, variant=variant, rank=3, timesteps=timesteps)
            models.append(model)
        models[1].load_state_dict(models[0].state_dict())
        config = TrainingConfig(timesteps=timesteps, batch_size=n, step_mode=mode)
        t_o0 = BPTTTrainer(models[0], config, compile=True, optimize="O0")
        t_o1 = BPTTTrainer(models[1], config, compile=True, optimize="O1")
        data = rng.random((n, 3, size, size)).astype(np.float32)
        labels = rng.integers(0, 4, n)
        for _ in range(2):                # capture step, then one replay
            s0 = t_o0.train_step(data, labels)
            s1 = t_o1.train_step(data, labels)
        assert abs(s0["loss"] - s1["loss"]) <= 1e-6
        for (name, p0), (_, p1) in zip(models[0].named_parameters(),
                                       models[1].named_parameters()):
            np.testing.assert_allclose(p0.grad, p1.grad, atol=1e-6,
                                       err_msg=f"grad {name}")

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, rows=st.integers(2, 6), cols=st.integers(2, 6),
           depth=st.integers(2, 5))
    def test_random_elementwise_chains_fuse_exactly(self, seed, rows, cols, depth):
        """Random unary/binary elementwise chains replay bit-equal under O1
        fusion (the fused kernel runs the identical ufunc sequence)."""
        from repro.runtime import CompiledForward

        rng = np.random.default_rng(seed)
        constants = [Tensor(_array(rng, rows, cols)) for _ in range(depth)]
        ops = rng.integers(0, 5, depth)

        def chain(t):
            out = t
            for k in range(depth):
                op = ops[k]
                if op == 0:
                    out = out + constants[k]
                elif op == 1:
                    out = out * constants[k]
                elif op == 2:
                    out = out.tanh()
                elif op == 3:
                    out = (out * 0.5).exp()
                else:
                    out = out.abs() + 0.1
            return out

        compiled = CompiledForward(chain, optimize="O1")
        x = _array(rng, rows, cols)
        compiled(x)
        replayed = compiled(x)
        from repro.autograd.tensor import no_grad
        with no_grad():
            want = chain(Tensor(x)).data
        np.testing.assert_array_equal(replayed, want)

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, features=st.integers(3, 10), momentum=st.floats(0.01, 0.5),
           gamma_scale=st.floats(0.5, 2.0))
    def test_bn_fold_matches_unfolded_eval(self, seed, features, momentum, gamma_scale):
        """Eval-BN folding into the preceding convolution stays within 1e-6 of
        the unfolded replay for random statistics and affine parameters."""
        from repro.nn.layers import Conv2d, batch_norm_sequence
        from repro.runtime import CompiledForward
        from repro.autograd.tensor import no_grad

        rng = np.random.default_rng(seed)
        conv = Conv2d(3, features, kernel_size=3, padding=1, rng=rng)
        running_mean = rng.standard_normal(features).astype(np.float32)
        running_var = (0.5 + rng.random(features)).astype(np.float32)
        weight = Tensor((1 + 0.2 * rng.standard_normal(features)).astype(np.float32))
        bias = Tensor(rng.standard_normal(features).astype(np.float32))

        def fn(t):
            folded = conv.forward_sequence(t)
            return batch_norm_sequence(folded, weight, bias, eps=1e-5,
                                       momentum=momentum, training=False,
                                       running_mean=running_mean,
                                       running_var=running_var,
                                       gamma_scale=gamma_scale, channels_last=True)

        x = rng.random((2, 2, 6, 6, 3)).astype(np.float32)
        compiled = CompiledForward(fn, optimize="O2")
        compiled(x)
        replayed = compiled(x)
        with no_grad():
            want = fn(Tensor(x)).data
        # Folded float32 conv weights reassociate the scale multiply, so the
        # replay can drift a few ulp past 1e-6 for large gamma_scale values.
        np.testing.assert_allclose(replayed, want, atol=1e-5, rtol=1e-5)
