"""Tests for the search cost model and the Pareto machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.accelerator import ExistingAcceleratorModel
from repro.hardware.simulator import simulate_training_energy
from repro.metrics.flops import compression_report_from_specs, mixed_format_report
from repro.models.specs import resnet20_layer_specs
from repro.search import (
    CandidateCost,
    LayerChoice,
    ParetoPoint,
    dominates,
    model_cost,
    pareto_front,
    select_winner,
)

TIMESTEPS = 4
SPECS = resnet20_layer_specs()
NUM_DECOMPOSABLE = sum(1 for s in SPECS if s.kind == "conv" and s.decomposable)


def uniform(fmt: str, rank: int = 8):
    return tuple(LayerChoice(fmt, 0 if fmt == "dense" else rank)
                 for _ in range(NUM_DECOMPOSABLE))


class TestModelCost:
    def test_uniform_ptt_matches_existing_accounting(self):
        cost = model_cost(uniform("ptt", 8), SPECS, timesteps=TIMESTEPS)
        report = compression_report_from_specs(SPECS, 8, TIMESTEPS, half_timesteps=0)
        assert cost.params == report.tt_params
        assert cost.macs == report.tt_macs

    def test_uniform_htt_matches_existing_accounting(self):
        cost = model_cost(uniform("htt", 8), SPECS, timesteps=TIMESTEPS,
                          half_timesteps=2)
        report = compression_report_from_specs(SPECS, 8, TIMESTEPS, half_timesteps=2)
        assert cost.macs == report.tt_macs
        # HTT skips branch work on half timesteps: strictly cheaper than PTT.
        ptt = model_cost(uniform("ptt", 8), SPECS, timesteps=TIMESTEPS)
        assert cost.macs < ptt.macs
        assert cost.params == ptt.params  # same parameterisation

    def test_all_dense_equals_baseline(self):
        cost = model_cost(uniform("dense"), SPECS, timesteps=TIMESTEPS)
        report = compression_report_from_specs(SPECS, 8, TIMESTEPS)
        assert cost.params == report.dense_params
        assert cost.macs == report.dense_macs

    def test_cost_monotone_in_rank(self):
        small = model_cost(uniform("ptt", 4), SPECS, timesteps=TIMESTEPS)
        large = model_cost(uniform("ptt", 16), SPECS, timesteps=TIMESTEPS)
        assert small.params < large.params
        assert small.macs < large.macs

    def test_mixed_config_counts_per_layer(self):
        config = list(uniform("ptt", 8))
        config[0] = LayerChoice("dense", 0)
        config[1] = LayerChoice("stt", 4)
        cost = model_cost(tuple(config), SPECS, timesteps=TIMESTEPS)
        all_ptt = model_cost(uniform("ptt", 8), SPECS, timesteps=TIMESTEPS)
        assert cost.params != all_ptt.params

    def test_wrong_choice_count_raises(self):
        with pytest.raises(ValueError):
            model_cost(uniform("ptt")[:-1], SPECS, timesteps=TIMESTEPS)
        with pytest.raises(ValueError):
            model_cost(uniform("ptt") + (LayerChoice("ptt", 8),), SPECS,
                       timesteps=TIMESTEPS)

    def test_energy_requires_accelerator(self):
        cost = model_cost(uniform("ptt", 8), SPECS, timesteps=TIMESTEPS)
        assert cost.energy_pj is None
        with pytest.raises(ValueError):
            cost.scalar("energy_pj")

    def test_uniform_energy_matches_simulator(self):
        accelerator = ExistingAcceleratorModel()
        for fmt, half in (("stt", 0), ("ptt", 0), ("htt", 2)):
            cost = model_cost(uniform(fmt, 8), SPECS, timesteps=TIMESTEPS,
                              half_timesteps=half, accelerator=accelerator)
            reference = simulate_training_energy(
                SPECS, fmt, accelerator, ranks=8, timesteps=TIMESTEPS,
                half_timesteps=half,
            )
            assert cost.energy_pj == pytest.approx(reference.total_pj, rel=1e-9)

    def test_dense_energy_matches_baseline_simulation(self):
        accelerator = ExistingAcceleratorModel()
        cost = model_cost(uniform("dense"), SPECS, timesteps=TIMESTEPS,
                          accelerator=accelerator)
        reference = simulate_training_energy(SPECS, "baseline", accelerator,
                                             ranks=8, timesteps=TIMESTEPS)
        assert cost.energy_pj == pytest.approx(reference.total_pj, rel=1e-9)


class TestMixedFormatReport:
    def test_uniform_equivalence(self):
        assignments = [("ptt", 8)] * NUM_DECOMPOSABLE
        mixed = mixed_format_report(SPECS, assignments, TIMESTEPS)
        reference = compression_report_from_specs(SPECS, 8, TIMESTEPS)
        assert mixed.tt_params == reference.tt_params
        assert mixed.tt_macs == reference.tt_macs
        assert mixed.dense_params == reference.dense_params

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            mixed_format_report(SPECS, [("ptt", 8)], TIMESTEPS)

    def test_unknown_format_raises(self):
        assignments = [("cp", 8)] + [("ptt", 8)] * (NUM_DECOMPOSABLE - 1)
        with pytest.raises(ValueError):
            mixed_format_report(SPECS, assignments, TIMESTEPS)


def _point(fmt, rank, accuracy, macs):
    config = (LayerChoice(fmt, rank),)
    return ParetoPoint(config=config, accuracy=accuracy,
                       cost=CandidateCost(params=macs // 10, macs=macs))


class TestPareto:
    def test_dominance(self):
        better = _point("ptt", 8, 0.9, 100)
        worse = _point("ptt", 4, 0.8, 200)
        tie = _point("stt", 8, 0.9, 100)
        assert dominates(better, worse)
        assert not dominates(worse, better)
        assert not dominates(better, tie) and not dominates(tie, better)

    def test_front_extraction_sorted_by_cost(self):
        points = [
            _point("ptt", 2, 0.60, 50),
            _point("ptt", 4, 0.75, 100),
            _point("ptt", 8, 0.90, 200),
            _point("stt", 4, 0.70, 120),   # dominated by ("ptt", 4)
            _point("stt", 8, 0.85, 250),   # dominated by ("ptt", 8)
        ]
        front = pareto_front(points)
        assert [p.accuracy for p in front] == [0.60, 0.75, 0.90]
        costs = [p.cost.scalar("macs") for p in front]
        assert costs == sorted(costs)

    def test_duplicate_configs_collapsed(self):
        a = _point("ptt", 8, 0.80, 100)
        b = _point("ptt", 8, 0.85, 100)   # re-evaluation of the same config
        front = pareto_front([a, b])
        assert len(front) == 1 and front[0].accuracy == 0.85

    def test_select_modes(self):
        front = pareto_front([
            _point("ptt", 2, 0.60, 50),
            _point("ptt", 4, 0.85, 100),
            _point("ptt", 8, 0.90, 400),
        ])
        assert select_winner(front, mode="accuracy").accuracy == 0.90
        assert select_winner(front, mode="cost").cost.scalar("macs") == 50
        budget = select_winner(front, mode="budget", budget=150)
        assert budget.accuracy == 0.85
        # Nothing affordable -> cheapest.
        assert select_winner(front, mode="budget", budget=10).cost.scalar("macs") == 50
        # The middle point is far above the chord: the knee.
        assert select_winner(front, mode="knee").accuracy == 0.85

    def test_knee_degenerate_falls_back_to_accuracy(self):
        front = pareto_front([_point("ptt", 2, 0.6, 50), _point("ptt", 8, 0.9, 400)])
        assert select_winner(front, mode="knee").accuracy == 0.9

    def test_empty_front_raises(self):
        with pytest.raises(ValueError):
            select_winner([], mode="accuracy")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            select_winner([_point("ptt", 2, 0.6, 50)], mode="magic")
