"""Tests for the capture/plan/replay runtime (:mod:`repro.runtime`).

The headline guarantee: with ``compile=True`` a replayed training step is
numerically equivalent to the eager step — logits, losses, gradients,
optimizer state and parameters all match to <= 1e-6 after several steps
(they are bitwise-equal by construction: the planned backward replicates the
eager DFS accumulation order exactly) — and a change of the input signature
re-captures transparently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.datasets import ArrayDataset, DataLoader, EventDataset
from repro.metrics.profiler import summarize_runtime
from repro.models.builder import convert_to_tt
from repro.models.resnet import spiking_resnet18
from repro.models.vgg import spiking_vgg9
from repro.nn.layers import Linear, Sequential
from repro.runtime import BufferArena, CompiledForward, CompiledTrainStep
from repro.serve.engine import InferenceEngine
from repro.snn.loss import TETLoss
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer

TIMESTEPS = 2
NUM_CLASSES = 4
ATOL = 1e-6


def _make_model(arch: str, variant: str, rng_seed: int = 0):
    rng = np.random.default_rng(rng_seed)
    if arch == "vgg9":
        model = spiking_vgg9(num_classes=NUM_CLASSES, in_channels=3, timesteps=TIMESTEPS,
                             width_scale=0.1, rng=rng)
    else:
        model = spiking_resnet18(num_classes=NUM_CLASSES, in_channels=3, timesteps=TIMESTEPS,
                                 width_scale=0.07, rng=rng)
    convert_to_tt(model, variant=variant, rank=4, timesteps=TIMESTEPS)
    return model

def _make_pair(arch: str, variant: str):
    """Two models with identical state (TT init uses SVD, so copy state dicts)."""
    eager = _make_model(arch, variant)
    compiled = _make_model(arch, variant)
    compiled.load_state_dict(eager.state_dict())
    return eager, compiled


def _batches(steps: int = 3, n: int = 2, size: int = 8, seed: int = 7):
    rng = np.random.default_rng(seed)
    return [(rng.random((n, 3, size, size)).astype(np.float32),
             rng.integers(0, NUM_CLASSES, n)) for _ in range(steps)]


def _assert_states_match(eager, compiled, context: str) -> None:
    for (name, p1), (_, p2) in zip(eager.named_parameters(), compiled.named_parameters()):
        np.testing.assert_allclose(p1.data, p2.data, atol=ATOL,
                                   err_msg=f"{context}: param {name}")
        np.testing.assert_allclose(p1.grad, p2.grad, atol=ATOL,
                                   err_msg=f"{context}: grad {name}")
    for (name, b1), (_, b2) in zip(eager.named_buffers(), compiled.named_buffers()):
        np.testing.assert_allclose(b1.data, b2.data, atol=ATOL,
                                   err_msg=f"{context}: buffer {name}")


# ---------------------------------------------------------------------------
# eager-vs-replay equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arch", ["vgg9", "resnet18"])
@pytest.mark.parametrize("variant", ["stt", "ptt", "htt"])
@pytest.mark.parametrize("mode", ["single", "fused"])
def test_compiled_train_step_matches_eager(arch, variant, mode):
    """Loss / logits / grads / params / buffers match eager over K=3 steps."""
    eager, compiled = _make_pair(arch, variant)
    config = TrainingConfig(timesteps=TIMESTEPS, batch_size=2, learning_rate=0.05,
                            step_mode=mode)
    trainer_eager = BPTTTrainer(eager, config)
    trainer_compiled = BPTTTrainer(compiled, config, compile=True)

    for step, (data, labels) in enumerate(_batches()):
        stats_eager = trainer_eager.train_step(data, labels)
        stats_compiled = trainer_compiled.train_step(data, labels)
        assert abs(stats_eager["loss"] - stats_compiled["loss"]) <= ATOL, \
            f"step {step}: loss diverged"
        assert stats_eager["accuracy"] == stats_compiled["accuracy"]
        assert stats_compiled["replayed"] == (1.0 if step > 0 else 0.0)
    _assert_states_match(eager, compiled, f"{arch}/{variant}/{mode}")

    # Optimizer state (SGD momentum buffers) must match too.
    for v1, v2 in zip(trainer_eager.optimizer._velocity,
                      trainer_compiled.optimizer._velocity):
        if v1 is None:
            assert v2 is None
        else:
            np.testing.assert_allclose(v1, v2, atol=ATOL)


def test_compiled_step_with_tet_loss_and_adam():
    """Coverage for the alternative loss (TET) and optimizer (Adam) paths."""
    eager, compiled = _make_pair("vgg9", "ptt")
    config = TrainingConfig(timesteps=TIMESTEPS, batch_size=2, learning_rate=1e-3,
                            optimizer="adam")
    loss = TETLoss(lamb=0.1)
    trainer_eager = BPTTTrainer(eager, config, loss_fn=loss)
    trainer_compiled = BPTTTrainer(compiled, config, loss_fn=loss, compile=True)
    for data, labels in _batches():
        s1 = trainer_eager.train_step(data, labels)
        s2 = trainer_compiled.train_step(data, labels)
        assert abs(s1["loss"] - s2["loss"]) <= ATOL
    _assert_states_match(eager, compiled, "tet/adam")
    for m1, m2 in zip(trainer_eager.optimizer._m, trainer_compiled.optimizer._m):
        np.testing.assert_allclose(m1, m2, atol=ATOL)


def test_loss_functions_accept_onehot_tensor_labels():
    """The built-in losses treat a one-hot Tensor like the integer labels."""
    rng = np.random.default_rng(0)
    logits = Tensor(rng.standard_normal((5, NUM_CLASSES)).astype(np.float32))
    labels = rng.integers(0, NUM_CLASSES, 5)
    onehot = Tensor(F.one_hot(labels, NUM_CLASSES))
    np.testing.assert_allclose(F.cross_entropy(logits, labels).data,
                               F.cross_entropy(logits, onehot).data, rtol=1e-6)


# ---------------------------------------------------------------------------
# invalidation on signature change
# ---------------------------------------------------------------------------


def test_shape_change_triggers_recapture():
    eager, compiled = _make_pair("vgg9", "ptt")
    config = TrainingConfig(timesteps=TIMESTEPS, batch_size=2, learning_rate=0.05)
    trainer_eager = BPTTTrainer(eager, config)
    trainer_compiled = BPTTTrainer(compiled, config, compile=True)
    rng = np.random.default_rng(3)

    shapes = [(2, 8), (3, 8), (2, 8), (2, 12), (3, 8)]
    for n, size in shapes:
        data = rng.random((n, 3, size, size)).astype(np.float32)
        labels = rng.integers(0, NUM_CLASSES, n)
        s1 = trainer_eager.train_step(data, labels)
        s2 = trainer_compiled.train_step(data, labels)
        assert abs(s1["loss"] - s2["loss"]) <= ATOL, f"shape {(n, size)}"
    stats = trainer_compiled.runtime_stats()
    assert stats["captures"] == 3          # three distinct signatures
    assert stats["replays"] == 2           # the two repeats replayed
    _assert_states_match(eager, compiled, "shape-change")


def test_property_random_shape_sequence_invalidation():
    """Property-style: any random shape sequence keeps compiled == eager and
    captures exactly one plan per distinct signature."""
    rng = np.random.default_rng(1234)
    module = Sequential(Linear(6, 10, rng=rng), Linear(10, 3, rng=rng))
    module.eval()
    compiled = module.compile()

    seen = set()
    for _ in range(20):
        n = int(rng.integers(1, 5))
        x = rng.standard_normal((n, 6)).astype(np.float32)
        seen.add((n, 6))
        out = compiled(x)
        np.testing.assert_allclose(out, module(Tensor(x)).data, atol=ATOL)
    assert compiled.plan_count == len(seen)
    assert compiled.capture_count == len(seen)
    compiled.invalidate()
    assert compiled.plan_count == 0


# ---------------------------------------------------------------------------
# serving
# ---------------------------------------------------------------------------


def test_compiled_engine_matches_eager_engine():
    model = _make_model("vgg9", "ptt")
    eager_engine = InferenceEngine(model)
    compiled_engine = InferenceEngine(model, compile=True)
    rng = np.random.default_rng(5)
    for n in (1, 3, 4, 5, 3):
        x = rng.random((n, 3, 8, 8)).astype(np.float32)
        logits_eager = eager_engine.infer(x)
        logits_compiled = compiled_engine.infer(x)
        assert logits_compiled.shape == (n, NUM_CLASSES)
        np.testing.assert_allclose(logits_eager, logits_compiled, atol=1e-5,
                                   err_msg=f"batch size {n}")
    stats = compiled_engine.runtime_stats()
    # N in {3, 4} pads to the same power-of-two bucket -> shared plan.
    assert stats["captures"] == 3
    assert stats["replays"] == 2
    assert compiled_engine.requests_served == 1 + 3 + 4 + 5 + 3


def test_compiled_engine_single_sample():
    model = _make_model("vgg9", "ptt")
    engine = InferenceEngine(model, compile=True)
    x = np.random.default_rng(0).random((3, 8, 8)).astype(np.float32)
    logits = engine.infer(x)
    assert logits.shape == (NUM_CLASSES,)
    assert np.isfinite(logits).all()


# ---------------------------------------------------------------------------
# arena: steady-state allocations
# ---------------------------------------------------------------------------


def test_arena_steady_state_allocations_are_zero():
    _, compiled = _make_pair("vgg9", "ptt")
    trainer = BPTTTrainer(compiled, TrainingConfig(timesteps=TIMESTEPS, batch_size=2),
                          compile=True)
    batches = _batches(steps=5)
    for data, labels in batches[:2]:
        trainer.train_step(data, labels)
    arena = trainer._compiled.arena
    allocated_after_warmup = arena.allocated
    for data, labels in batches[2:]:
        trainer.train_step(data, labels)
    assert arena.allocated == allocated_after_warmup, \
        "steady-state replays must not allocate fresh arena buffers"
    stats = trainer.runtime_stats()
    assert stats["plan"]["managed_slots"] > 0
    assert stats["plan"]["grad_buffers"] > 0


def test_arena_reuses_released_buffers():
    arena = BufferArena()
    first = arena.acquire((4, 4), np.float32)
    arena.release(first)
    second = arena.acquire((4, 4), np.float32)
    assert second is first
    assert arena.allocated == 1 and arena.reused == 1
    assert arena.stats()["reuse_rate"] == 0.5


def test_invalidated_plan_buffers_seed_next_capture():
    rng = np.random.default_rng(2)
    module = Sequential(Linear(5, 5, rng=rng))
    module.eval()
    compiled = module.compile()
    x = rng.standard_normal((3, 5)).astype(np.float32)
    compiled(x)
    compiled(x)
    allocated = compiled.arena.allocated
    compiled.invalidate()
    compiled(x)  # re-capture: buffers come back from the free lists
    assert compiled.arena.allocated == allocated
    assert compiled.arena.reused > 0


# ---------------------------------------------------------------------------
# Module.compile / CompiledForward
# ---------------------------------------------------------------------------


def test_module_compile_matches_eager_forward():
    rng = np.random.default_rng(9)
    module = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
    module.eval()
    compiled = module.compile()
    x = rng.standard_normal((6, 4)).astype(np.float32)
    np.testing.assert_allclose(compiled(x), module(Tensor(x)).data, atol=ATOL)
    # Parameter updates between replays are picked up (leaf slots are live).
    module[0].weight.data += 0.25
    np.testing.assert_allclose(compiled(x), module(Tensor(x)).data, atol=ATOL)
    assert compiled.capture_count == 1 and compiled.replay_count == 1


def test_compiled_model_run_timesteps_sequence_output():
    model = _make_model("vgg9", "ptt")
    model.eval()
    compiled = model.compile(fn=lambda t: model.run_timesteps(t, step_mode="fused"))
    rng = np.random.default_rng(11)
    batch = np.broadcast_to(rng.random((1, 2, 3, 8, 8)).astype(np.float32),
                            (TIMESTEPS, 2, 3, 8, 8)).copy()
    outs = compiled(batch)
    assert isinstance(outs, list) and len(outs) == TIMESTEPS
    from repro.autograd.tensor import no_grad
    with no_grad():
        eager = model.run_timesteps(batch, step_mode="fused")
    for got, want in zip(outs, eager):
        np.testing.assert_allclose(got, want.data, atol=ATOL)


def test_runtime_stats_report():
    _, compiled = _make_pair("vgg9", "ptt")
    trainer = BPTTTrainer(compiled, TrainingConfig(timesteps=TIMESTEPS, batch_size=2),
                          compile=True)
    assert trainer.runtime_stats() is None
    for data, labels in _batches(steps=3):
        trainer.train_step(data, labels)
    report = summarize_runtime(trainer._compiled)
    assert report["captures"] == 1 and report["replays"] == 2
    assert report["replay_latency"]["count"] == 2.0
    assert report["capture_over_replay"] > 0
    assert "arena" in report and "plan" in report


# ---------------------------------------------------------------------------
# zero_grad / accumulate-on-first-write satellites
# ---------------------------------------------------------------------------


def test_compiled_grads_accumulate_across_steps_without_zero_grad():
    """Replays must accumulate into param.grad like eager backward does.

    Regression test: the write-back used to alias the plan's accumulation
    buffer, so the next replay overwrote the previous step's gradient.
    """
    from repro.snn.encoding import encode_batch
    from repro.snn.loss import mean_output_cross_entropy

    eager, compiled = _make_pair("vgg9", "ptt")
    step = CompiledTrainStep(compiled, mean_output_cross_entropy)
    for data, labels in _batches(steps=3):
        batch = encode_batch(data, TIMESTEPS)
        outputs = eager.run_timesteps(batch, step_mode="fused")
        mean_output_cross_entropy(outputs, labels).backward()
        step.run(batch, labels)          # no zero_grad in between
    for (name, p1), (_, p2) in zip(eager.named_parameters(), compiled.named_parameters()):
        np.testing.assert_allclose(p1.grad, p2.grad, atol=ATOL,
                                   err_msg=f"accumulated grad {name}")


def test_zero_grad_in_place_does_not_corrupt_shared_sibling_grad():
    """Regression: add shares one grad array between both parents; zero-filling
    one parent's (non-owned) grad must not zero the sibling's."""
    a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    b = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    (a + b).sum().backward()
    assert a.grad is b.grad              # adopted by reference on both sides
    a.zero_grad(set_to_none=False)
    np.testing.assert_allclose(b.grad, np.ones(3))
    np.testing.assert_allclose(a.grad, np.zeros(3))
    # And the replacement array is private: further accumulation into `a`
    # leaves `b` untouched.
    (a * 1.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones(3))
    np.testing.assert_allclose(b.grad, np.ones(3))


def test_zero_grad_set_to_none_semantics():
    param = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    (param * 2.0).sum().backward()
    (param * 2.0).sum().backward()   # second accumulation -> owned buffer
    buffer = param.grad
    assert buffer is not None
    param.zero_grad(set_to_none=False)
    # Owned buffers are zero-filled in place (references stay valid)...
    assert param.grad is buffer and np.all(buffer == 0.0)
    # ...and set_to_none=True drops the buffer entirely.
    param.zero_grad()
    assert param.grad is None


def test_grad_accumulation_is_correct_and_inplace_after_ownership():
    param = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    for _ in range(3):
        (param * 3.0).sum().backward()
    np.testing.assert_allclose(param.grad, np.full(4, 9.0))
    # The shared upstream gradient handed to both parents of an add must not
    # be corrupted by in-place accumulation into either of them.
    a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    b = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    (a + b).sum().backward()
    (a * 1.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full(3, 2.0))
    np.testing.assert_allclose(b.grad, np.ones(3))


# ---------------------------------------------------------------------------
# DataLoader prefetch satellite
# ---------------------------------------------------------------------------


def _array_dataset(n=20, transform=None):
    rng = np.random.default_rng(21)
    return ArrayDataset(rng.random((n, 3, 6, 6)).astype(np.float32),
                        rng.integers(0, 4, n), transform=transform)


def test_prefetch_loader_is_deterministic_with_seed():
    dataset = _array_dataset()
    plain = DataLoader(dataset, batch_size=6, shuffle=True, seed=42)
    prefetched = DataLoader(dataset, batch_size=6, shuffle=True, seed=42, prefetch=True)
    for epoch in range(2):
        batches_plain = list(plain)
        batches_pre = list(prefetched)
        assert len(batches_plain) == len(batches_pre)
        for (d1, l1), (d2, l2) in zip(batches_plain, batches_pre):
            np.testing.assert_array_equal(d1, d2)
            np.testing.assert_array_equal(l1, l2)


def test_prefetch_loader_event_dataset_and_transform():
    rng = np.random.default_rng(3)
    dataset = EventDataset(rng.random((9, TIMESTEPS, 2, 6, 6)).astype(np.float32),
                           rng.integers(0, 3, 9),
                           transform=lambda s: s * 2.0)
    loader = DataLoader(dataset, batch_size=4, shuffle=False, prefetch=True)
    batches = list(loader)
    assert batches[0][0].shape == (TIMESTEPS, 4, 2, 6, 6)
    assert sum(b[0].shape[1] for b in batches) == 9


def test_prefetch_loader_propagates_worker_exception():
    class Exploding(ArrayDataset):
        def __getitem__(self, index):
            if index >= 4:
                raise RuntimeError("boom")
            return super().__getitem__(index)

    rng = np.random.default_rng(0)
    dataset = Exploding(rng.random((8, 1, 4, 4)).astype(np.float32),
                        rng.integers(0, 2, 8))
    loader = DataLoader(dataset, batch_size=4, shuffle=False, prefetch=True)
    with pytest.raises(RuntimeError, match="boom"):
        list(loader)


def test_prefetch_rejects_bad_depth():
    with pytest.raises(ValueError):
        DataLoader(_array_dataset(), prefetch_depth=0)


def test_training_with_prefetch_matches_plain_loader():
    dataset = _array_dataset(n=12)
    eager, compiled = _make_pair("vgg9", "ptt")
    config = TrainingConfig(timesteps=TIMESTEPS, batch_size=4, learning_rate=0.05, seed=5)
    t1, t2 = BPTTTrainer(eager, config), BPTTTrainer(compiled, config, compile=True)
    plain = DataLoader(dataset, batch_size=4, shuffle=True, seed=5)
    pre = DataLoader(dataset, batch_size=4, shuffle=True, seed=5, prefetch=True)
    r1 = t1.train_epoch(plain, epoch=0)
    r2 = t2.train_epoch(pre, epoch=0)
    assert abs(r1.loss - r2.loss) <= 1e-6
    assert r1.accuracy == r2.accuracy
