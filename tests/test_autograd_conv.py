"""Tests for the im2col convolution: correctness against a naive reference and gradients."""

import numpy as np
import pytest

from repro.autograd.conv import col2im, conv2d, conv2d_output_shape, im2col
from repro.autograd.tensor import Tensor

from conftest import assert_grad_close, numerical_gradient


def naive_conv2d(x, w, stride=(1, 1), padding=(0, 0)):
    """Reference convolution (cross-correlation) with explicit loops."""
    n, c, h, wdt = x.shape
    o, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (wdt + 2 * pw - kw) // sw + 1
    out = np.zeros((n, o, oh, ow), dtype=np.float64)
    for b in range(n):
        for oc in range(o):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[b, oc, i, j] = np.sum(patch * w[oc])
    return out


class TestOutputShape:
    def test_basic_shape(self):
        assert conv2d_output_shape((32, 32), (3, 3), 1, 1) == (32, 32)

    def test_stride_two(self):
        assert conv2d_output_shape((32, 32), (3, 3), 2, 1) == (16, 16)

    def test_asymmetric_kernel(self):
        assert conv2d_output_shape((10, 10), (3, 1), 1, (1, 0)) == (10, 10)
        assert conv2d_output_shape((10, 10), (1, 3), 1, (0, 1)) == (10, 10)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv2d_output_shape((2, 2), (5, 5), 1, 0)


class TestIm2Col:
    def test_round_trip_shapes(self, rng):
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, (3, 3), 1, 1)
        assert cols.shape == (2, 3 * 9, 36)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> (adjointness), required for correct gradients."""
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float64)
        y = rng.standard_normal((1, 2 * 9, 25)).astype(np.float64)
        lhs = float((im2col(x, (3, 3), 1, 1) * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConvForward:
    @pytest.mark.parametrize("kernel,stride,padding", [
        ((3, 3), (1, 1), (1, 1)),
        ((3, 3), (2, 2), (1, 1)),
        ((1, 1), (1, 1), (0, 0)),
        ((3, 1), (1, 1), (1, 0)),
        ((1, 3), (1, 1), (0, 1)),
        ((5, 5), (1, 1), (2, 2)),
    ])
    def test_matches_naive(self, rng, kernel, stride, padding):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3) + kernel).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        expected = naive_conv2d(x, w, stride, padding)
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-4)

    def test_bias_added(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((3, 2, 1, 1)).astype(np.float32)
        b = np.array([1.0, -1.0, 0.5], dtype=np.float32)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b))
        no_bias = conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data - no_bias.data, b.reshape(1, 3, 1, 1) * np.ones_like(out.data),
                                   rtol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        x = rng.standard_normal((1, 3, 4, 4)).astype(np.float32)
        w = rng.standard_normal((2, 4, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError):
            conv2d(Tensor(x), Tensor(w), padding=1)


class TestConvBackward:
    def test_weight_gradient_matches_numeric(self, rng):
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w_val = (rng.standard_normal((2, 2, 3, 3)) * 0.3).astype(np.float32)
        w = Tensor(w_val.copy(), requires_grad=True)
        out = conv2d(Tensor(x), w, padding=1)
        (out * out).sum().backward()

        def loss_fn(arr):
            y = naive_conv2d(x.astype(np.float64), arr, (1, 1), (1, 1))
            return float((y * y).sum())

        numeric = numerical_gradient(loss_fn, w_val.astype(np.float64))
        assert_grad_close(w.grad, numeric, atol=5e-2, rtol=5e-2)

    def test_input_gradient_matches_numeric(self, rng):
        x_val = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = (rng.standard_normal((3, 2, 3, 1)) * 0.3).astype(np.float32)
        x = Tensor(x_val.copy(), requires_grad=True)
        out = conv2d(x, Tensor(w), padding=(1, 0))
        (out * out).sum().backward()

        def loss_fn(arr):
            y = naive_conv2d(arr, w.astype(np.float64), (1, 1), (1, 0))
            return float((y * y).sum())

        numeric = numerical_gradient(loss_fn, x_val.astype(np.float64))
        assert_grad_close(x.grad, numeric, atol=5e-2, rtol=5e-2)

    def test_strided_gradients_have_right_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        out = conv2d(x, w, b, stride=2, padding=1)
        out.sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, out.shape[2] * out.shape[3] * 2), rtol=1e-5)

    def test_gradient_accumulates_over_reuse(self, rng):
        """Using the same weight twice (as TT layers reuse conv1) accumulates both paths."""
        x = Tensor(rng.standard_normal((1, 2, 4, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((2, 2, 1, 1)).astype(np.float32), requires_grad=True)
        out1 = conv2d(x, w)
        out2 = conv2d(x, w)
        (out1.sum() + out2.sum()).backward()
        single = conv2d(x, w)
        w2 = Tensor(w.data.copy(), requires_grad=True)
        conv2d(x, w2).sum().backward()
        np.testing.assert_allclose(w.grad, 2 * w2.grad, rtol=1e-5)
