"""Tests for the post-training merge of TT cores into dense kernels (Eq. 6)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.models.builder import convert_to_tt, count_tt_layers
from repro.models.resnet import spiking_resnet18
from repro.nn.layers import Conv2d
from repro.tt.layers import HTTConv2d, PTTConv2d, STTConv2d
from repro.tt.reconstruct import merge_model, merge_tt_layer, reconstruct_dense_weight


class TestReconstructWeight:
    def test_ptt_reconstruction_is_cross_shaped(self, rng):
        layer = PTTConv2d(4, 6, 3, rank=3)
        dense = reconstruct_dense_weight(layer)
        assert dense.shape == (6, 4, 3, 3)
        # The four corners of the 3x3 kernel must be exactly zero (Fig. 1c).
        corners = dense[:, :, [0, 0, 2, 2], [0, 2, 0, 2]]
        np.testing.assert_array_equal(corners, np.zeros_like(corners))
        # The cross positions are generically non-zero.
        assert np.abs(dense[:, :, 1, 1]).sum() > 0

    def test_stt_reconstruction_matches_decomposed_weight(self, rng):
        from repro.tt.decomposition import max_tt_ranks

        w = rng.standard_normal((8, 6, 3, 3)).astype(np.float32)
        layer = STTConv2d(6, 8, 3, rank=max(max_tt_ranks(6, 8, (3, 3))), dense_weight=w)
        np.testing.assert_allclose(reconstruct_dense_weight(layer), w, atol=1e-3)

    def test_htt_uses_parallel_reconstruction(self, rng):
        layer = HTTConv2d(4, 6, 3, rank=3, timesteps=4)
        dense = reconstruct_dense_weight(layer)
        corners = dense[:, :, [0, 0, 2, 2], [0, 2, 0, 2]]
        np.testing.assert_array_equal(corners, np.zeros_like(corners))

    def test_rejects_unknown_layer_type(self):
        with pytest.raises(TypeError):
            reconstruct_dense_weight(Conv2d(3, 3, 3))


class TestMergeEquivalence:
    """Algorithm 1 lines 20-22: the merged dense conv must act like the TT module."""

    def test_ptt_merge_exact_for_stride_one(self, rng):
        layer = PTTConv2d(5, 7, 3, rank=4)
        merged = merge_tt_layer(layer)
        x = Tensor(rng.standard_normal((2, 5, 9, 9)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, merged(x).data, atol=1e-4)

    def test_stt_merge_exact_for_stride_one(self, rng):
        layer = STTConv2d(5, 7, 3, rank=4)
        merged = merge_tt_layer(layer)
        x = Tensor(rng.standard_normal((2, 5, 9, 9)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, merged(x).data, atol=1e-4)

    def test_merge_exact_for_strided_layer_in_last_mode(self, rng):
        """stride_mode='last' keeps the merge exact even with stride 2."""
        layer = PTTConv2d(5, 7, 3, rank=4, stride=2, stride_mode="last")
        merged = merge_tt_layer(layer)
        x = Tensor(rng.standard_normal((1, 5, 8, 8)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, merged(x).data, atol=1e-4)

    def test_merged_layer_configuration(self):
        layer = PTTConv2d(5, 7, 3, rank=4, stride=2)
        merged = merge_tt_layer(layer)
        assert isinstance(merged, Conv2d)
        assert merged.stride == (2, 2)
        assert merged.padding == (1, 1)
        assert merged.kernel_size == (3, 3)

    def test_htt_merge_matches_full_path(self, rng):
        """HTT merges its full (PTT) path; on a full timestep the outputs agree."""
        layer = HTTConv2d(5, 7, 3, rank=4, timesteps=2, schedule="FH")
        merged = merge_tt_layer(layer)
        x = Tensor(rng.standard_normal((1, 5, 9, 9)).astype(np.float32))
        layer.reset_time()
        np.testing.assert_allclose(layer(x).data, merged(x).data, atol=1e-4)


class TestMergeModel:
    def test_merge_model_replaces_all_tt_layers(self):
        model = spiking_resnet18(num_classes=4, in_channels=3, timesteps=2, width_scale=0.07,
                                 rng=np.random.default_rng(0))
        replaced = convert_to_tt(model, variant="ptt", rank=4)
        assert count_tt_layers(model) == len(replaced) == 16
        merged = merge_model(model)
        assert merged == 16
        assert count_tt_layers(model) == 0

    def test_merged_model_still_runs(self, rng):
        model = spiking_resnet18(num_classes=4, in_channels=3, timesteps=2, width_scale=0.07,
                                 rng=np.random.default_rng(0))
        convert_to_tt(model, variant="ptt", rank=4)
        inputs = rng.random((2, 2, 3, 12, 12)).astype(np.float32)
        before = model.run_timesteps(inputs)
        merge_model(model)
        after = model.run_timesteps(inputs)
        assert after[0].shape == before[0].shape

    def test_merge_model_on_dense_model_is_noop(self):
        model = spiking_resnet18(num_classes=4, in_channels=3, timesteps=2, width_scale=0.07)
        assert merge_model(model) == 0
