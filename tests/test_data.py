"""Tests for datasets, loaders, synthetic generators and transforms."""

import numpy as np
import pytest

from repro.data.datasets import ArrayDataset, DataLoader, EventDataset
from repro.data.synthetic import (
    SyntheticCIFAR10,
    SyntheticDVSGesture,
    SyntheticNCaltech101,
    make_event_dataset,
    make_static_image_dataset,
)
from repro.data.transforms import Compose, Normalize, RandomCrop, RandomHorizontalFlip


class TestArrayDataset:
    def test_basic_access(self, rng):
        images = rng.random((10, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 3, 10)
        ds = ArrayDataset(images, labels)
        image, label = ds[4]
        assert image.shape == (3, 8, 8)
        assert isinstance(label, int)
        assert len(ds) == 10
        assert ds.num_classes == labels.max() + 1

    def test_transform_applied(self, rng):
        ds = ArrayDataset(np.ones((4, 1, 4, 4), dtype=np.float32), np.zeros(4),
                          transform=lambda x: x * 2)
        assert ds[0][0].max() == pytest.approx(2.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(np.ones((4, 4, 4)), np.zeros(4))
        with pytest.raises(ValueError):
            ArrayDataset(np.ones((4, 1, 4, 4)), np.zeros(5))


class TestEventDataset:
    def test_access_and_props(self, rng):
        frames = rng.random((6, 3, 2, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 2, 6)
        ds = EventDataset(frames, labels)
        sample, _ = ds[0]
        assert sample.shape == (3, 2, 8, 8)
        assert ds.timesteps == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            EventDataset(np.ones((4, 2, 8, 8)), np.zeros(4))


class TestDataLoader:
    def test_batches_cover_dataset(self, rng):
        ds = ArrayDataset(rng.random((10, 1, 4, 4)).astype(np.float32), np.arange(10) % 3)
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        batches = list(loader)
        assert len(batches) == 3 == len(loader)
        assert sum(len(labels) for _, labels in batches) == 10

    def test_drop_last(self, rng):
        ds = ArrayDataset(rng.random((10, 1, 4, 4)).astype(np.float32), np.zeros(10))
        loader = DataLoader(ds, batch_size=4, shuffle=False, drop_last=True)
        assert len(list(loader)) == 2

    def test_shuffle_is_seeded(self, rng):
        ds = ArrayDataset(rng.random((10, 1, 4, 4)).astype(np.float32), np.arange(10))
        loads = [np.concatenate([labels for _, labels in DataLoader(ds, 4, shuffle=True, seed=3)])
                 for _ in range(2)]
        np.testing.assert_array_equal(loads[0], loads[1])

    def test_event_batches_are_time_major(self, rng):
        frames = rng.random((6, 3, 2, 8, 8)).astype(np.float32)
        ds = EventDataset(frames, np.zeros(6))
        data, labels = next(iter(DataLoader(ds, batch_size=2, shuffle=False)))
        assert data.shape == (3, 2, 2, 8, 8)       # (T, N, C, H, W)

    def test_invalid_batch_size(self, rng):
        ds = ArrayDataset(rng.random((4, 1, 4, 4)).astype(np.float32), np.zeros(4))
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)


class TestShardedDataLoader:
    def _dataset(self, rng, n=22):
        return ArrayDataset(rng.random((n, 1, 4, 4)).astype(np.float32),
                            np.arange(n) % 3)

    def test_shard_union_is_unsharded_epoch_exactly_once(self, rng):
        """Per batch, concatenating the shards reproduces the unsharded batch."""
        ds = self._dataset(rng)
        full = DataLoader(ds, batch_size=8, shuffle=True, seed=5)
        shards = [DataLoader(ds, batch_size=8, shuffle=True, seed=5,
                             num_shards=3, shard_index=i) for i in range(3)]
        full.set_epoch(2)
        for loader in shards:
            loader.set_epoch(2)
        shard_batches = [list(loader) for loader in shards]
        full_batches = list(full)
        assert all(len(b) == len(full_batches) for b in shard_batches)
        seen = []
        for step, (data, labels) in enumerate(full_batches):
            merged_data = np.concatenate(
                [shard_batches[i][step][0] for i in range(3)])
            merged_labels = np.concatenate(
                [shard_batches[i][step][1] for i in range(3)])
            np.testing.assert_array_equal(merged_data, data)
            np.testing.assert_array_equal(merged_labels, labels)
            seen.extend(merged_labels.tolist())
        assert len(seen) == len(ds)  # every sample exactly once

    def test_set_epoch_reproduces_order_across_instances(self, rng):
        ds = self._dataset(rng)
        a = DataLoader(ds, batch_size=4, shuffle=True, seed=9)
        b = DataLoader(ds, batch_size=4, shuffle=True, seed=9)
        a.set_epoch(3)
        b.set_epoch(3)
        for (_, la), (_, lb) in zip(a, b):
            np.testing.assert_array_equal(la, lb)

    def test_epochs_differ_without_set_epoch(self, rng):
        ds = self._dataset(rng)
        loader = DataLoader(ds, batch_size=22, shuffle=True, seed=1)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_sharding_composes_with_prefetch(self, rng):
        ds = self._dataset(rng)
        plain = DataLoader(ds, batch_size=8, shuffle=True, seed=4,
                           num_shards=2, shard_index=1)
        pre = DataLoader(ds, batch_size=8, shuffle=True, seed=4,
                         num_shards=2, shard_index=1, prefetch=True)
        for (da, la), (db, lb) in zip(plain, pre):
            np.testing.assert_array_equal(da, db)
            np.testing.assert_array_equal(la, lb)

    def test_empty_shard_batches_keep_shapes(self, rng):
        ds = self._dataset(rng, n=9)  # final batch of 1 over 2 shards
        loader = DataLoader(ds, batch_size=4, shuffle=False,
                            num_shards=2, shard_index=1)
        batches = list(loader)
        assert len(batches) == 3
        tail_data, tail_labels = batches[-1]
        assert tail_data.shape == (0, 1, 4, 4)
        assert tail_labels.shape == (0,)

    def test_shard_validation(self, rng):
        ds = self._dataset(rng)
        with pytest.raises(ValueError):
            DataLoader(ds, num_shards=0)
        with pytest.raises(ValueError):
            DataLoader(ds, num_shards=2, shard_index=2)


class TestSyntheticGenerators:
    def test_static_dataset_properties(self):
        ds = make_static_image_dataset(40, 5, channels=3, height=16, width=16, seed=1)
        assert ds.images.shape == (40, 3, 16, 16)
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0
        assert set(np.unique(ds.labels)) == set(range(5))

    def test_static_dataset_deterministic(self):
        a = make_static_image_dataset(10, 3, seed=7)
        b = make_static_image_dataset(10, 3, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_static_classes_are_distinguishable(self):
        """Class means must differ far more than within-class noise (learnable signal)."""
        ds = make_static_image_dataset(60, 3, height=16, width=16, noise=0.2, seed=0)
        means = [ds.images[ds.labels == c].mean(axis=0) for c in range(3)]
        between = np.mean([np.abs(means[0] - means[1]).mean(), np.abs(means[1] - means[2]).mean()])
        within = np.mean([ds.images[ds.labels == c].std(axis=0).mean() for c in range(3)])
        assert between > within * 0.5

    def test_event_dataset_properties(self):
        ds = make_event_dataset(20, 4, timesteps=5, channels=2, height=16, width=16, seed=2)
        assert ds.frames.shape == (20, 5, 2, 16, 16)
        assert set(np.unique(ds.frames)).issubset({0.0, 1.0})

    def test_event_timesteps_carry_distinct_information(self):
        """Dynamic data: frames must differ across timesteps (the property HTT suffers from)."""
        ds = make_event_dataset(8, 4, timesteps=4, height=16, width=16, seed=0)
        sample = ds.frames[0]
        differences = [np.abs(sample[t] - sample[t + 1]).mean() for t in range(3)]
        assert all(d > 0.01 for d in differences)

    def test_named_dataset_classes(self):
        assert SyntheticCIFAR10(num_samples=20).num_classes == 10
        assert SyntheticNCaltech101(num_samples=101, num_classes=101).timesteps == 6
        assert SyntheticDVSGesture(num_samples=11, num_classes=11).frames.shape[2] == 2

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            make_static_image_dataset(3, 10)


class TestTransforms:
    def test_normalize(self):
        image = np.ones((3, 4, 4), dtype=np.float32)
        out = Normalize([0.5, 0.5, 0.5], [0.5, 0.5, 0.5])(image)
        np.testing.assert_allclose(out, np.ones_like(image))

    def test_normalize_rejects_zero_std(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])

    def test_flip(self, rng):
        image = rng.random((1, 4, 4)).astype(np.float32)
        flipped = RandomHorizontalFlip(p=1.0)(image)
        np.testing.assert_array_equal(flipped, image[..., ::-1])

    def test_crop_preserves_shape(self, rng):
        image = rng.random((3, 16, 16)).astype(np.float32)
        assert RandomCrop(padding=2, seed=0)(image).shape == (3, 16, 16)

    def test_compose(self, rng):
        image = rng.random((1, 8, 8)).astype(np.float32)
        pipeline = Compose([RandomHorizontalFlip(p=0.0), RandomCrop(padding=0)])
        np.testing.assert_array_equal(pipeline(image), image)
