"""End-to-end tests for the search pipeline (warm-up → explore → serve)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_static_image_dataset
from repro.hardware.accelerator import ExistingAcceleratorModel
from repro.models.specs import vgg_layer_specs
from repro.models.vgg import VGG9_CONFIG, spiking_vgg9
from repro.search import (
    EvolutionarySearch,
    GumbelSoftmaxSearch,
    RandomSearch,
    SearchConfig,
    Searcher,
    TTSupernet,
)
from repro.serve import InferenceServer, ModelRegistry
from repro.tt.layers import TTConv2dBase


def _supernet(seed: int = 0, width_scale: float = 0.15) -> TTSupernet:
    model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                         width_scale=width_scale, rng=np.random.default_rng(seed))
    return TTSupernet(model, max_rank=8)


def _datasets():
    train = make_static_image_dataset(128, 4, height=14, width=14, noise=0.25, seed=1)
    val = make_static_image_dataset(48, 4, height=14, width=14, noise=0.25, seed=2)
    return train, val


SPECS = vgg_layer_specs(VGG9_CONFIG, num_classes=4)


def _searcher(strategy, accelerator=None, **config_overrides):
    config = dict(warmup_epochs=4, batch_size=16, eval_batch_size=48,
                  learning_rate=0.1, cost_metric="macs", finetune_epochs=0, seed=0)
    config.update(config_overrides)
    train, val = _datasets()
    return Searcher(_supernet(), train, val, SPECS,
                    config=SearchConfig(**config), strategy=strategy,
                    accelerator=accelerator)


class TestSearcherEndToEnd:
    def test_evolutionary_run_produces_a_pareto_front_and_serves(self):
        searcher = _searcher(
            EvolutionarySearch(population_size=8, generations=2, parents=4, elite=2),
            finetune_epochs=1,
        )
        result = searcher.run()

        # Warm-up trained the supernet.
        assert len(result.warmup_history) == 4
        assert all(np.isfinite(epoch.loss) for epoch in result.warmup_history)

        # Acceptance: a non-trivial accuracy-vs-cost front.
        assert len(result.front) >= 3
        costs = [p.cost.scalar("macs") for p in result.front]
        accs = [p.accuracy for p in result.front]
        assert costs == sorted(costs)
        assert accs == sorted(accs)  # non-dominated => accuracy rises with cost

        # The winner materialised, fine-tuned, merges (Eq. 6) and serves.
        assert len(result.finetune_history) == 1
        tt_layers = sum(1 for c in result.winner.config if c.format != "dense")
        registry = ModelRegistry()
        server = InferenceServer(registry, max_batch_size=8, max_wait_ms=2.0)
        try:
            result.publish(server, "searched",
                           warmup_sample=np.zeros((3, 14, 14), np.float32))
            assert registry.get("searched").merged_layers == tt_layers
            logits = server.infer("searched", np.zeros((3, 14, 14), np.float32),
                                  timeout=60)
            assert logits.shape == (4,) and np.isfinite(logits).all()
        finally:
            server.close()

    def test_random_strategy_with_energy_cost(self):
        searcher = _searcher(RandomSearch(num_samples=6),
                             accelerator=ExistingAcceleratorModel(),
                             cost_metric="energy_pj", warmup_epochs=1)
        result = searcher.run()
        assert 1 <= len(result.evaluated) <= 6
        assert all(p.cost.energy_pj is not None and p.cost.energy_pj > 0
                   for p in result.evaluated)
        assert len(result.front) >= 1

    def test_gumbel_strategy_trains_logits_and_proposes(self):
        strategy = GumbelSoftmaxSearch(steps=6, proposals=4)
        searcher = _searcher(strategy, warmup_epochs=1)
        result = searcher.run()
        assert len(strategy.alphas_) == len(searcher.space)
        assert all(np.abs(alpha).max() > 0 for alpha in strategy.alphas_)
        assert 1 <= len(result.evaluated) <= 4
        assert not searcher.supernet.mixture_active  # cleaned up after search

    def test_winner_is_bitwise_reproducible_from_supernet(self):
        searcher = _searcher(RandomSearch(num_samples=4), warmup_epochs=1)
        result = searcher.run()
        # Materialising the winning config again yields identical weights.
        again = result.supernet.materialise(result.winner.config)
        for (name_a, p_a), (name_b, p_b) in zip(result.model.named_parameters(),
                                                again.named_parameters()):
            assert name_a == name_b
            assert np.array_equal(p_a.data, p_b.data)

    def test_evaluation_cache_reuses_points(self):
        searcher = _searcher(RandomSearch(num_samples=3), warmup_epochs=0)
        config = searcher.space.uniform_config("ptt")
        first = searcher.evaluate_config(config)
        second = searcher.evaluate_config(config)
        assert first is second

    def test_spec_count_mismatch_raises(self):
        train, val = _datasets()
        bad_specs = [s for s in SPECS if not s.decomposable]
        with pytest.raises(ValueError):
            Searcher(_supernet(), train, val, bad_specs)

    def test_htt_cost_follows_the_supernet_schedule(self):
        # An all-full schedule means HTT never takes the short path, so its
        # cost must equal PTT's (the searcher derives half_timesteps from the
        # schedule the supernet actually executes).
        train, val = _datasets()
        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                             width_scale=0.15, rng=np.random.default_rng(0))
        all_full = Searcher(TTSupernet(model, max_rank=8, schedule="FF"),
                            train, val, SPECS,
                            config=SearchConfig(warmup_epochs=0, seed=0))
        assert all_full.half_timesteps == 0
        htt = all_full.evaluate_config(all_full.space.uniform_config("htt"))
        ptt = all_full.evaluate_config(all_full.space.uniform_config("ptt"))
        assert htt.cost.macs == ptt.cost.macs
        # The default half-split schedule yields a strictly cheaper HTT.
        default = _searcher(RandomSearch(num_samples=1), warmup_epochs=0)
        assert default.half_timesteps == 1
        htt_default = default.evaluate_config(default.space.uniform_config("htt"))
        assert htt_default.cost.macs < ptt.cost.macs

    def test_energy_metric_requires_accelerator(self):
        train, val = _datasets()
        with pytest.raises(ValueError):
            Searcher(_supernet(), train, val, SPECS,
                     config=SearchConfig(cost_metric="energy_pj"))

    def test_materialised_winner_contains_only_concrete_layers(self):
        searcher = _searcher(RandomSearch(num_samples=3), warmup_epochs=0)
        result = searcher.run()
        from repro.search.supernet import EntangledTTConv2d

        assert not any(isinstance(m, EntangledTTConv2d)
                       for m in result.model.modules())
        tt_count = sum(1 for m in result.model.modules()
                       if isinstance(m, TTConv2dBase))
        expected = sum(1 for c in result.winner.config if c.format != "dense")
        assert tt_count == expected
