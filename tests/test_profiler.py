"""Tests for the public API of :mod:`repro.metrics.profiler`.

The profiler module carries the repo's one shared percentile routine
(:func:`summarize_latencies` — also the math behind ``ServerStats`` and the
obs histograms), the compiled-runtime report (:func:`summarize_runtime` with
its hot-op table) and the ``op@backend`` label parser
(:func:`kernel_backend`).  These were previously exercised only indirectly
through serving tests; this file pins their contracts down directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.profiler import (TrainingTimeProfiler, kernel_backend,
                                    summarize_latencies, summarize_runtime,
                                    time_training_step)


class TestSummarizeLatencies:
    def test_empty_sample_yields_zeros(self):
        summary = summarize_latencies([])
        assert summary == {"count": 0.0, "mean_s": 0.0, "max_s": 0.0,
                           "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0}

    def test_known_percentiles(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        summary = summarize_latencies(values)
        assert summary["count"] == 100.0
        assert summary["mean_s"] == pytest.approx(50.5)
        assert summary["max_s"] == 100.0
        assert summary["p50_s"] == pytest.approx(np.percentile(values, 50))
        assert summary["p95_s"] == pytest.approx(np.percentile(values, 95))
        assert summary["p99_s"] == pytest.approx(np.percentile(values, 99))

    def test_custom_percentiles_shape_the_keys(self):
        summary = summarize_latencies([1.0, 2.0, 3.0], percentiles=(10, 90))
        assert set(summary) == {"count", "mean_s", "max_s", "p10_s", "p90_s"}
        assert summary["p90_s"] >= summary["p10_s"]

    def test_single_observation(self):
        summary = summarize_latencies([0.25])
        assert summary["p50_s"] == 0.25 == summary["max_s"] == summary["mean_s"]


class TestKernelBackend:
    @pytest.mark.parametrize("label, backend", [
        ("conv2d", "numpy"),                      # unsuffixed = reference
        ("bwd:conv2d", "numpy"),
        ("matmul@codegen", "codegen"),
        ("bwd:lif@numba", "numba"),
        ("fn_cached:ConvChannelsLastFunction@numpy", "numpy"),
        ("elementwise_chain@fallback", "fallback"),
    ])
    def test_parses_executing_backend(self, label, backend):
        assert kernel_backend(label) == backend


class TestSummarizeRuntime:
    def test_rejects_sources_without_runtime_stats(self):
        with pytest.raises(TypeError, match="does not expose runtime_stats"):
            summarize_runtime(object())

    def test_rejects_inactive_runtime(self):
        class Eager:
            def runtime_stats(self):
                return None

        with pytest.raises(ValueError, match="not active"):
            summarize_runtime(Eager())

    def test_report_from_a_fake_source(self):
        class Fake:
            replay_durations = [0.010, 0.012, 0.011]

            def runtime_stats(self):
                return {
                    "captures": 1, "replays": 3,
                    "mean_capture_s": 0.100, "mean_replay_s": 0.010,
                    "kernels": {
                        "conv2d": {"seconds": 6.0, "calls": 30},
                        "matmul@codegen": {"seconds": 3.0, "calls": 10},
                        "bwd:lif@fallback": {"seconds": 1.0, "calls": 5},
                    },
                }

        report = summarize_runtime(Fake(), top_k=2)
        assert report["capture_over_replay"] == pytest.approx(10.0)
        assert report["replay_latency"]["count"] == 3.0
        hot = report["hot_ops"]
        assert len(hot) == 2  # top_k truncates
        assert hot[0]["op"] == "conv2d" and hot[0]["backend"] == "numpy"
        assert hot[0]["share"] == pytest.approx(0.6)
        assert hot[1]["op"] == "matmul@codegen"
        assert hot[1]["backend"] == "codegen"

    def test_hot_op_table_from_a_real_profiled_trainer(self):
        from repro.models.vgg import spiking_vgg9
        from repro.training.config import TrainingConfig
        from repro.training.trainer import BPTTTrainer

        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                             width_scale=0.08, rng=np.random.default_rng(0))
        trainer = BPTTTrainer(model, TrainingConfig(timesteps=2, batch_size=4),
                              compile=True, profile=True)
        rng = np.random.default_rng(1)
        data = rng.random((4, 3, 10, 10)).astype(np.float32)
        labels = rng.integers(0, 4, 4)
        trainer.train_step(data, labels)  # capture
        trainer.train_step(data, labels)  # profiled replay
        report = summarize_runtime(trainer, top_k=5)
        assert report["replays"] >= 1
        hot = report["hot_ops"]
        assert 1 <= len(hot) <= 5
        assert all(entry["seconds"] >= 0 and entry["calls"] >= 1
                   for entry in hot)
        shares = [entry["share"] for entry in hot]
        assert shares == sorted(shares, reverse=True)
        assert all(entry["backend"] == "numpy" for entry in hot)


class TestTrainingTimeProfiler:
    def test_measure_and_reduction(self):
        from repro.models.vgg import spiking_vgg9

        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                             width_scale=0.08, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        inputs = rng.random((2, 2, 3, 10, 10)).astype(np.float32)
        labels = rng.integers(0, 4, 2)
        profiler = TrainingTimeProfiler(repeats=1, warmup=0)
        base = profiler.measure("baseline", model, inputs, labels)
        assert base > 0
        profiler.timings["fast"] = base / 2  # synthetic second method
        assert profiler.reduction_vs("fast") == pytest.approx(50.0)
        table = profiler.as_table()
        assert table["fast"]["reduction_pct"] == pytest.approx(50.0)
        assert "reduction_pct" not in table["baseline"]
        with pytest.raises(KeyError):
            profiler.reduction_vs("missing")

    def test_time_training_step_returns_positive_median(self):
        from repro.models.vgg import spiking_vgg9

        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                             width_scale=0.08, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        inputs = rng.random((2, 2, 3, 10, 10)).astype(np.float32)
        labels = rng.integers(0, 4, 2)
        assert time_training_step(model, inputs, labels,
                                  repeats=1, warmup=0) > 0
