"""Tests for the standard layers: Conv2d, Linear, BatchNorm2d, pooling, dropout."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn import init


class TestConv2dLayer:
    def test_output_shape_square(self, rng, small_image_batch):
        conv = Conv2d(3, 8, 3, stride=1, padding=1)
        out = conv(Tensor(small_image_batch))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_asymmetric(self, rng, small_image_batch):
        conv_v = Conv2d(3, 4, (3, 1), padding=(1, 0))
        conv_h = Conv2d(3, 4, (1, 3), padding=(0, 1))
        assert conv_v(Tensor(small_image_batch)).shape == (2, 4, 8, 8)
        assert conv_h(Tensor(small_image_batch)).shape == (2, 4, 8, 8)

    def test_same_padding_string(self, small_image_batch):
        conv = Conv2d(3, 4, 3, padding="same")
        assert conv.padding == (1, 1)
        assert conv(Tensor(small_image_batch)).shape[-2:] == (8, 8)

    def test_stride_downsamples(self, small_image_batch):
        conv = Conv2d(3, 4, 3, stride=2, padding=1)
        assert conv(Tensor(small_image_batch)).shape[-2:] == (4, 4)

    def test_bias_parameter_optional(self):
        assert Conv2d(3, 4, 3, bias=False).bias is None
        assert Conv2d(3, 4, 3, bias=True).bias is not None

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            Conv2d(0, 4, 3)

    def test_output_shape_helper(self):
        conv = Conv2d(3, 4, 3, stride=2, padding=1)
        assert conv.output_shape((32, 32)) == (16, 16)


class TestLinearLayer:
    def test_shapes_and_grad(self, rng):
        fc = Linear(6, 3)
        x = Tensor(rng.standard_normal((4, 6)).astype(np.float32), requires_grad=True)
        out = fc(x)
        assert out.shape == (4, 3)
        out.sum().backward()
        assert fc.weight.grad.shape == (3, 6)
        assert fc.bias.grad.shape == (3,)


class TestBatchNorm2d:
    def test_normalises_in_training(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)).astype(np.float32) * 3 + 2)
        out = bn(x)
        assert abs(out.data.mean()) < 1e-2
        assert abs(out.data.std() - 1.0) < 5e-2

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.ones((4, 2, 3, 3), dtype=np.float32) * 10)
        bn(x)
        assert np.all(bn.running_mean.data > 0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((8, 2, 4, 4)).astype(np.float32))
        for _ in range(20):
            bn(x)
        bn.eval()
        out_eval = bn(x)
        bn.train()
        out_train = bn(x)
        # After many updates the two paths should be close but computed differently.
        assert out_eval.shape == out_train.shape
        assert np.all(np.isfinite(out_eval.data))

    def test_rejects_non_4d(self):
        bn = BatchNorm2d(2)
        with pytest.raises(ValueError):
            bn(Tensor(np.ones((2, 2))))

    def test_gamma_init(self):
        bn = BatchNorm2d(3, gamma_init=0.5)
        np.testing.assert_allclose(bn.weight.data, np.full(3, 0.5))


class TestPoolingLayers:
    def test_avg_and_max_pool_layers(self, small_image_batch):
        assert AvgPool2d(2)(Tensor(small_image_batch)).shape == (2, 3, 4, 4)
        assert MaxPool2d(2)(Tensor(small_image_batch)).shape == (2, 3, 4, 4)

    def test_adaptive_pool_layer(self, small_image_batch):
        assert AdaptiveAvgPool2d(1)(Tensor(small_image_batch)).shape == (2, 3, 1, 1)


class TestMiscLayers:
    def test_flatten(self, small_image_batch):
        assert Flatten()(Tensor(small_image_batch)).shape == (2, 3 * 64)

    def test_identity(self, small_image_batch):
        x = Tensor(small_image_batch)
        assert Identity()(x) is x

    def test_relu_layer(self):
        out = ReLU()(Tensor(np.array([-1.0, 1.0])))
        np.testing.assert_allclose(out.data, [0.0, 1.0])

    def test_dropout_layer_respects_training_flag(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100,), dtype=np.float32))
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)
        drop.train()
        assert not np.array_equal(drop(x).data, x.data)


class TestInit:
    def test_fan_in_fan_out_conv(self):
        fan_in, fan_out = init.calculate_fan_in_fan_out((8, 4, 3, 3))
        assert fan_in == 4 * 9 and fan_out == 8 * 9

    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((256, 128, 3, 3), rng=np.random.default_rng(0))
        expected_std = np.sqrt(2.0 / (256 * 9))
        assert w.std() == pytest.approx(expected_std, rel=0.05)

    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((64, 64), rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 128)
        assert np.all(np.abs(w) <= bound + 1e-6)

    def test_fan_requires_2d(self):
        with pytest.raises(ValueError):
            init.calculate_fan_in_fan_out((5,))
