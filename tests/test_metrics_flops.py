"""Focused tests for :mod:`repro.metrics.flops` on HTT layers.

The search cost model leans on the HTT accounting (full-path MACs on full
timesteps, short-path MACs on half timesteps), so the per-layer arithmetic is
cross-checked here against hand-computed values.
"""

from __future__ import annotations

import pytest

from repro.metrics.flops import (
    compression_report_from_specs,
    dense_model_macs,
    mixed_format_report,
    tt_model_macs,
)
from repro.models.specs import LayerSpec
from repro.tt.compression import tt_conv_macs, tt_half_path_macs


def _conv_spec(name="conv", in_c=8, out_c=16, k=3, hw=(8, 8), decomposable=True):
    return LayerSpec(name=name, kind="conv", in_channels=in_c, out_channels=out_c,
                     kernel_size=(k, k), stride=1, input_hw=hw, output_hw=hw,
                     decomposable=decomposable)


class TestHTTModelMacs:
    def test_single_layer_hand_computed(self):
        spec = _conv_spec()
        rank, timesteps, half = 4, 4, 2
        # Full path: r*I + r*r*K + r*r*K + O*r MACs per output position.
        hw = 8 * 8
        full = (4 * 8 + 4 * 4 * 3 + 4 * 4 * 3 + 16 * 4) * hw
        short = (4 * 8 + 16 * 4) * hw
        assert tt_conv_macs(8, 16, (3, 3), (4, 4, 4), (8, 8), (8, 8)) == full
        assert tt_half_path_macs(8, 16, (4, 4, 4), (8, 8), (8, 8)) == short
        expected = full * (timesteps - half) + short * half
        assert tt_model_macs([spec], rank, timesteps, half_timesteps=half) == expected

    def test_half_timesteps_zero_equals_ptt(self):
        spec = _conv_spec()
        assert tt_model_macs([spec], 4, 4, half_timesteps=0) == \
            tt_model_macs([spec], 4, 4)

    def test_all_half_timesteps_is_short_path_only(self):
        spec = _conv_spec()
        short = tt_half_path_macs(8, 16, (4, 4, 4), (8, 8), (8, 8))
        assert tt_model_macs([spec], 4, 4, half_timesteps=4) == short * 4

    def test_half_timesteps_bounds(self):
        spec = _conv_spec()
        with pytest.raises(ValueError):
            tt_model_macs([spec], 4, 4, half_timesteps=5)
        with pytest.raises(ValueError):
            tt_model_macs([spec], 4, 4, half_timesteps=-1)

    def test_non_decomposable_layers_run_densely_every_timestep(self):
        specs = [_conv_spec(name="stem", decomposable=False), _conv_spec()]
        timesteps = 4
        dense_stem = specs[0].macs * timesteps
        tt_only = tt_model_macs([specs[1]], 4, timesteps, half_timesteps=2)
        assert tt_model_macs(specs, 4, timesteps, half_timesteps=2) == \
            dense_stem + tt_only

    def test_htt_report_cheaper_than_ptt_report(self):
        specs = [_conv_spec()]
        ptt = compression_report_from_specs(specs, 4, 4, half_timesteps=0)
        htt = compression_report_from_specs(specs, 4, 4, half_timesteps=2)
        assert htt.tt_macs < ptt.tt_macs
        assert htt.tt_params == ptt.tt_params


class TestMixedFormatReportPerLayer:
    def test_per_layer_formats_add_up(self):
        specs = [
            _conv_spec(name="a"),
            _conv_spec(name="b"),
            _conv_spec(name="c"),
        ]
        timesteps, half = 4, 2
        mixed = mixed_format_report(
            specs, [("dense", 0), ("ptt", 4), ("htt", 4)], timesteps,
            half_timesteps=half,
        )
        dense_m = dense_model_macs([specs[0]], timesteps)
        ptt_m = tt_model_macs([specs[1]], 4, timesteps)
        htt_m = tt_model_macs([specs[2]], 4, timesteps, half_timesteps=half)
        assert mixed.tt_macs == dense_m + ptt_m + htt_m

    def test_half_timesteps_only_affect_htt_layers(self):
        specs = [_conv_spec(name="a"), _conv_spec(name="b")]
        no_half = mixed_format_report(specs, [("ptt", 4), ("htt", 4)], 4,
                                      half_timesteps=0)
        with_half = mixed_format_report(specs, [("ptt", 4), ("htt", 4)], 4,
                                        half_timesteps=2)
        ptt_macs = tt_model_macs([specs[0]], 4, 4)
        # The PTT layer contributes identically in both reports.
        assert no_half.tt_macs - with_half.tt_macs == \
            tt_model_macs([specs[1]], 4, 4) - \
            tt_model_macs([specs[1]], 4, 4, half_timesteps=2)
        assert ptt_macs < no_half.tt_macs
