"""Tests for the LIF neuron and surrogate gradients (Eq. 1 of the paper)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.snn.neurons import (
    LIFNeuron,
    SurrogateArctan,
    SurrogateRectangular,
    SurrogateSigmoid,
    spike_function,
)


class TestSpikeFunction:
    def test_forward_is_heaviside(self):
        pre = Tensor(np.array([-0.1, 0.0, 0.3]))
        out = spike_function(pre)
        np.testing.assert_array_equal(out.data, [0.0, 1.0, 1.0])

    def test_output_is_binary(self, rng):
        pre = Tensor(rng.standard_normal(100).astype(np.float32))
        out = spike_function(pre)
        assert set(np.unique(out.data)).issubset({0.0, 1.0})

    def test_surrogate_gradient_nonzero_near_threshold(self):
        pre = Tensor(np.array([0.1, -0.1, 3.0]), requires_grad=True)
        spike_function(pre, SurrogateRectangular(width=1.0)).sum().backward()
        assert pre.grad[0] > 0 and pre.grad[1] > 0
        assert pre.grad[2] == 0.0      # far from threshold -> outside the window

    def test_rectangular_width_scales_gradient(self):
        narrow = SurrogateRectangular(width=0.5)
        wide = SurrogateRectangular(width=2.0)
        x = np.array([0.0])
        assert narrow.derivative(x)[0] > wide.derivative(x)[0]

    def test_arctan_and_sigmoid_peak_at_zero(self):
        for surrogate in (SurrogateArctan(), SurrogateSigmoid()):
            values = surrogate.derivative(np.array([-1.0, 0.0, 1.0]))
            assert values[1] == max(values)
            assert np.all(values > 0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SurrogateRectangular(width=0.0)


class TestLIFDynamics:
    def test_subthreshold_input_never_spikes(self):
        lif = LIFNeuron(tau_m=0.25, v_threshold=0.5)
        current = Tensor(np.full((1, 4), 0.3, dtype=np.float32))
        for _ in range(10):
            spikes = lif(current)
        # u_inf = 0.3 / (1 - 0.25) = 0.4 < 0.5
        assert spikes.data.sum() == 0

    def test_suprathreshold_input_spikes_immediately(self):
        lif = LIFNeuron(v_threshold=0.5)
        spikes = lif(Tensor(np.full((1, 3), 0.8, dtype=np.float32)))
        assert np.all(spikes.data == 1.0)

    def test_hard_reset_to_zero(self):
        lif = LIFNeuron(tau_m=0.5, v_threshold=0.5, hard_reset=True)
        lif(Tensor(np.array([[1.0]], dtype=np.float32)))      # spikes, resets to 0
        # Next step integrates only the new input scaled by leak of the reset (0) membrane.
        lif(Tensor(np.array([[0.2]], dtype=np.float32)))
        assert lif.membrane_potential.data[0, 0] == pytest.approx(0.2)

    def test_soft_reset_subtracts_threshold(self):
        lif = LIFNeuron(tau_m=1.0, v_threshold=0.5, hard_reset=False)
        lif(Tensor(np.array([[0.8]], dtype=np.float32)))
        assert lif.membrane_potential.data[0, 0] == pytest.approx(0.3)

    def test_membrane_accumulates_with_leak(self):
        lif = LIFNeuron(tau_m=0.5, v_threshold=10.0)
        lif(Tensor(np.array([[1.0]], dtype=np.float32)))
        lif(Tensor(np.array([[1.0]], dtype=np.float32)))
        # u2 = 0.5 * 1.0 + 1.0 = 1.5
        assert lif.membrane_potential.data[0, 0] == pytest.approx(1.5)

    def test_reset_state_clears_membrane(self):
        lif = LIFNeuron()
        lif(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert lif.membrane_potential is not None
        lif.reset_state()
        assert lif.membrane_potential is None

    def test_paper_default_parameters(self):
        lif = LIFNeuron()
        assert lif.tau_m == pytest.approx(0.25)
        assert lif.v_threshold == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LIFNeuron(tau_m=0.0)
        with pytest.raises(ValueError):
            LIFNeuron(v_threshold=-1.0)
        with pytest.raises(ValueError):
            LIFNeuron(surrogate="unknown")

    def test_gradient_flows_through_time(self):
        """BPTT: the loss at t=2 must produce a gradient on the t=1 input."""
        lif = LIFNeuron(tau_m=0.5, v_threshold=0.4, detach_reset=True)
        x1 = Tensor(np.array([[0.3]], dtype=np.float32), requires_grad=True)
        x2 = Tensor(np.array([[0.2]], dtype=np.float32), requires_grad=True)
        s1 = lif(x1)
        s2 = lif(x2)
        s2.sum().backward()
        assert x2.grad is not None
        assert x1.grad is not None       # membrane carries x1 into timestep 2
        assert abs(x1.grad[0, 0]) > 0

    def test_spikes_are_binary_over_random_input(self, rng):
        lif = LIFNeuron()
        for _ in range(3):
            spikes = lif(Tensor(rng.standard_normal((2, 8)).astype(np.float32)))
            assert set(np.unique(spikes.data)).issubset({0.0, 1.0})
