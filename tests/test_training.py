"""Tests for the BPTT trainer, metrics profiler and the Algorithm-1 pipeline."""

import numpy as np
import pytest

from repro.data.datasets import DataLoader
from repro.metrics.params import count_parameters, parameter_breakdown
from repro.metrics.profiler import TrainingTimeProfiler, time_training_step
from repro.models.resnet import spiking_resnet18
from repro.models.vgg import spiking_vgg9
from repro.snn.encoding import DirectEncoder
from repro.snn.loss import TETLoss
from repro.training.config import TrainingConfig
from repro.training.pipeline import TTSNNPipeline
from repro.training.trainer import BPTTTrainer, evaluate_accuracy
from repro.tt.layers import PTTConv2d


def tiny_factory(num_classes=4, timesteps=2):
    rng = np.random.default_rng(0)
    return lambda: spiking_resnet18(num_classes=num_classes, in_channels=3, timesteps=timesteps,
                                    width_scale=0.07, rng=rng)


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.learning_rate == 0.1
        assert config.momentum == 0.9
        assert config.weight_decay == 1e-4
        assert config.tau_m == 0.25 and config.v_threshold == 0.5
        assert config.epochs == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(timesteps=0)
        with pytest.raises(ValueError):
            TrainingConfig(tt_variant="unknown")
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")

    def test_schedule_horizon(self):
        assert TrainingConfig(epochs=10).schedule_horizon == 10
        assert TrainingConfig(epochs=10, lr_schedule_t_max=50).schedule_horizon == 50


class TestTrainer:
    def test_train_step_returns_finite_loss(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=1, batch_size=8, learning_rate=0.05)
        model = tiny_factory()()
        trainer = BPTTTrainer(model, config)
        data, labels = next(iter(DataLoader(tiny_static_dataset, batch_size=8, shuffle=False)))
        stats = trainer.train_step(data, labels)
        assert np.isfinite(stats["loss"])
        assert 0.0 <= stats["accuracy"] <= 1.0

    def test_training_reduces_loss(self, tiny_static_dataset):
        """A few epochs on the tiny synthetic problem must reduce the training loss."""
        config = TrainingConfig(timesteps=2, epochs=4, batch_size=8, learning_rate=0.05, seed=1)
        model = tiny_factory()()
        trainer = BPTTTrainer(model, config)
        history = trainer.fit(tiny_static_dataset, epochs=4)
        assert history[-1].loss < history[0].loss

    def test_scheduler_decays_lr(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=3, batch_size=8, learning_rate=0.1)
        trainer = BPTTTrainer(tiny_factory()(), config)
        trainer.fit(tiny_static_dataset, epochs=3)
        assert trainer.optimizer.lr < 0.1

    def test_adam_optimizer_option(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=1, batch_size=8, optimizer="adam",
                                learning_rate=1e-3)
        trainer = BPTTTrainer(tiny_factory()(), config)
        assert trainer.scheduler is None
        trainer.fit(tiny_static_dataset, epochs=1)

    def test_event_data_training(self, tiny_event_dataset):
        config = TrainingConfig(timesteps=3, epochs=1, batch_size=6, learning_rate=0.05)
        rng = np.random.default_rng(0)
        model = spiking_vgg9(num_classes=4, in_channels=2, timesteps=3, width_scale=0.1, rng=rng)
        trainer = BPTTTrainer(model, config, loss_fn=TETLoss(lamb=0.05))
        history = trainer.fit(tiny_event_dataset, epochs=1)
        assert len(history) == 1

    def test_evaluate_accuracy_bounds(self, tiny_static_dataset):
        model = tiny_factory()()
        accuracy = evaluate_accuracy(model, tiny_static_dataset, batch_size=8, timesteps=2)
        assert 0.0 <= accuracy <= 1.0


class TestProfilerAndMetrics:
    def test_time_training_step_positive(self, tiny_static_dataset):
        model = tiny_factory()()
        inputs = DirectEncoder(2)(tiny_static_dataset.images[:4])
        labels = tiny_static_dataset.labels[:4]
        duration = time_training_step(model, inputs, labels, repeats=1, warmup=0)
        assert duration > 0

    def test_profiler_reductions(self, tiny_static_dataset):
        profiler = TrainingTimeProfiler(repeats=1, warmup=0)
        inputs = DirectEncoder(2)(tiny_static_dataset.images[:4])
        labels = tiny_static_dataset.labels[:4]
        profiler.measure("baseline", tiny_factory()(), inputs, labels)
        profiler.measure("ptt", tiny_factory()(), inputs, labels)
        table = profiler.as_table()
        assert "reduction_pct" in table["ptt"]
        with pytest.raises(KeyError):
            profiler.reduction_vs("missing")

    def test_count_parameters_and_breakdown(self):
        model = tiny_factory()()
        total = count_parameters(model)
        breakdown = parameter_breakdown(model)
        assert total > 0
        assert sum(breakdown.values()) == total


class TestPipeline:
    def test_baseline_pipeline(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=1, batch_size=8, learning_rate=0.05)
        pipeline = TTSNNPipeline(tiny_factory(), config)
        result = pipeline.run(tiny_static_dataset, epochs=1)
        assert result.method == "baseline"
        assert result.tt_layers == 0
        assert result.merged_layers == 0
        assert 0.0 <= result.accuracy <= 1.0

    def test_ptt_pipeline_decomposes_and_merges(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=1, batch_size=8, learning_rate=0.05,
                                tt_variant="ptt", tt_rank=4)
        pipeline = TTSNNPipeline(tiny_factory(), config)
        result = pipeline.run(tiny_static_dataset, epochs=1, merge_after_training=True)
        assert result.method == "ptt"
        assert result.tt_layers == 16
        assert result.merged_layers == 16
        # After merging, no TT layers remain.
        assert not any(isinstance(m, PTTConv2d) for m in pipeline.model.modules())

    def test_tt_pipeline_has_fewer_parameters_than_baseline(self, tiny_static_dataset):
        base_config = TrainingConfig(timesteps=2, epochs=1, batch_size=8)
        tt_config = TrainingConfig(timesteps=2, epochs=1, batch_size=8, tt_variant="stt", tt_rank=2)
        base_model = TTSNNPipeline(tiny_factory(), base_config).build()
        tt_model = TTSNNPipeline(tiny_factory(), tt_config).build()
        assert count_parameters(tt_model) < count_parameters(base_model)

    def test_htt_pipeline_with_schedule(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=1, batch_size=8, tt_variant="htt",
                                tt_rank=3, htt_schedule="FH")
        pipeline = TTSNNPipeline(tiny_factory(timesteps=2), config)
        result = pipeline.run(tiny_static_dataset, epochs=1, merge_after_training=False)
        assert result.tt_layers == 16

    def test_pipeline_vbmf_rank_policy(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=1, batch_size=8, tt_variant="ptt",
                                tt_rank="vbmf")
        model = TTSNNPipeline(tiny_factory(), config).build()
        assert any(isinstance(m, PTTConv2d) for m in model.modules())

    def test_merge_before_build_raises(self):
        pipeline = TTSNNPipeline(tiny_factory(), TrainingConfig(timesteps=2, epochs=1))
        with pytest.raises(RuntimeError):
            pipeline.merge()

    def test_profile_batch_timing(self, tiny_static_dataset):
        config = TrainingConfig(timesteps=2, epochs=1, batch_size=4, tt_variant="ptt", tt_rank=3)
        pipeline = TTSNNPipeline(tiny_factory(), config)
        inputs = DirectEncoder(2)(tiny_static_dataset.images[:4])
        result = pipeline.run(tiny_static_dataset, epochs=1,
                              profile_batch={"inputs": inputs,
                                             "labels": tiny_static_dataset.labels[:4]},
                              merge_after_training=False)
        assert result.training_step_time_s > 0
        assert "parameters_M" in result.as_dict()
