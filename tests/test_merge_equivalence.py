"""The serving snapshot is provably faithful to the trained TT model.

:class:`repro.serve.engine.InferenceEngine` snapshots a model by merging its
TT cores into dense kernels (Eq. 6).  These tests assert the end-to-end
guarantee behind that snapshot: for STT / PTT / HTT models the merged-dense
engine produces the *same logits* as the original TT model — whichever step
mode (single-step loop or fused) the original runs — to ``1e-5``.

HTT is tested with an all-full schedule: the merge reconstructs the full
(PTT) path, of which the half path is a runtime shortcut, so schedules that
take the shortcut are intentionally *not* logit-identical after merging
(``tests/test_tt_reconstruct.py`` covers the per-layer semantics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.tensor import no_grad
from repro.models.builder import convert_to_tt, count_tt_layers
from repro.models.resnet import spiking_resnet18
from repro.models.vgg import spiking_vgg9
from repro.serve.engine import InferenceEngine
from repro.snn.encoding import encode_batch
from repro.snn.loss import mean_output_cross_entropy
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer

TIMESTEPS = 3


def _make_tt_vgg(variant: str, seed: int = 0):
    model = spiking_vgg9(num_classes=5, in_channels=3, timesteps=TIMESTEPS,
                         width_scale=0.1, rng=np.random.default_rng(seed))
    kwargs = {}
    if variant == "htt":
        # All-full schedule: the merge reconstructs the full path exactly.
        kwargs = {"timesteps": TIMESTEPS, "schedule": "F" * TIMESTEPS}
    convert_to_tt(model, variant=variant, rank=4, **kwargs)
    return model


def _train_briefly(model, rng) -> None:
    """A couple of optimisation steps so BN running stats are non-trivial."""
    trainer = BPTTTrainer(model, TrainingConfig(timesteps=TIMESTEPS, epochs=1,
                                                batch_size=4, learning_rate=0.05, seed=0),
                          loss_fn=mean_output_cross_entropy)
    data = rng.random((4, 3, 12, 12)).astype(np.float32)
    labels = rng.integers(0, 5, size=4)
    for _ in range(2):
        trainer.train_step(data, labels)


def _mean_logits(model, inputs: np.ndarray, step_mode: str) -> np.ndarray:
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            outputs = model.run_timesteps(encode_batch(inputs, TIMESTEPS),
                                          step_mode=step_mode)
            return sum(o.data for o in outputs) / len(outputs)
    finally:
        if was_training:
            model.train()


@pytest.mark.parametrize("variant", ["stt", "ptt", "htt"])
@pytest.mark.parametrize("step_mode", ["single", "fused"])
def test_merged_engine_matches_tt_model(variant, step_mode, rng):
    """Engine logits == source TT model logits (both step modes) to 1e-5."""
    model = _make_tt_vgg(variant)
    _train_briefly(model, rng)
    inputs = rng.random((4, 3, 12, 12)).astype(np.float32)

    reference = _mean_logits(model, inputs, step_mode)
    engine = InferenceEngine(model)
    assert engine.merged_layers == 5          # VGG-9 minus stem / classifier
    served = engine.infer(inputs)

    np.testing.assert_allclose(served, reference, atol=1e-5, rtol=1e-5)


@pytest.mark.parametrize("step_mode", ["single", "fused"])
def test_merged_engine_matches_strided_resnet(step_mode, rng):
    """stride_mode='last' keeps the merge exact on ResNet's strided TT layers."""
    model = spiking_resnet18(num_classes=4, in_channels=3, timesteps=2,
                             width_scale=0.07, rng=np.random.default_rng(0))
    convert_to_tt(model, variant="ptt", rank=4, stride_mode="last")
    inputs = rng.random((2, 3, 12, 12)).astype(np.float32)

    model.eval()
    with no_grad():
        outputs = model.run_timesteps(encode_batch(inputs, 2), step_mode=step_mode)
        reference = sum(o.data for o in outputs) / len(outputs)
    engine = InferenceEngine(model)
    np.testing.assert_allclose(engine.infer(inputs), reference, atol=1e-5, rtol=1e-5)


def test_snapshot_leaves_source_model_untouched(rng):
    """Snapshotting must not merge, reset modes, or otherwise mutate the source."""
    model = _make_tt_vgg("ptt")
    model.train()
    tt_before = count_tt_layers(model)
    state_before = {k: v.copy() for k, v in model.state_dict().items()}

    engine = InferenceEngine(model)
    assert engine.merged_layers == tt_before
    assert count_tt_layers(model) == tt_before       # source keeps its TT cores
    assert model.training                            # and its training mode
    assert count_tt_layers(engine.model) == 0        # snapshot is fully dense
    assert not engine.model.training
    for key, value in model.state_dict().items():
        np.testing.assert_array_equal(value, state_before[key])


def test_predictions_survive_the_merge(rng):
    """Argmax decisions agree between the TT model and its serving snapshot."""
    model = _make_tt_vgg("stt", seed=3)
    _train_briefly(model, rng)
    inputs = rng.random((8, 3, 12, 12)).astype(np.float32)
    engine = InferenceEngine(model)
    np.testing.assert_array_equal(
        engine.predict(inputs),
        model.predict(encode_batch(inputs, TIMESTEPS)),
    )
