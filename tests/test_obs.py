"""Tests for the ``repro.obs`` observability layer.

Covers the four building blocks and their wiring into the stack:

* metrics — counter / gauge / histogram semantics, registry get-or-create,
  Prometheus text exposition and JSON snapshots;
* tracing — span nesting via context vars, the disabled no-op fast path,
  manual cross-thread span hand-off, error status on exceptions;
* exporters — Chrome ``trace_event`` JSON validity, JSONL span logs;
* flight recorder — K-slowest retention and report structure;
* integration — a served request produces one connected span tree
  (enqueue → queue wait → batch → engine → replay → per-kernel children),
  the trainer splits a step into data-wait / forward / backward / optimizer,
  prefetch-worker failures land in the consumer's trace, and
  ``InferenceServer.debug_report`` bundles all of it.
"""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

from repro import obs
from repro.data.datasets import ArrayDataset, DataLoader
from repro.models.vgg import spiking_vgg9
from repro.obs.export import ChromeTraceExporter, JSONLExporter
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               default_registry)
from repro.obs.trace import NOOP_SPAN, Span, current_span, get_tracer
from repro.serve import InferenceServer, ModelRegistry, ServerStats
from repro.serve.batcher import MicroBatcher
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer

SAMPLE_SHAPE = (3, 10, 10)


@pytest.fixture(autouse=True)
def obs_reset():
    """Leave the process-wide tracer exactly as we found it (disabled)."""
    tracer = get_tracer()
    yield
    tracer.enabled = False
    tracer.set_exporters(())
    tracer.set_kernel_sample_rate(0.0)
    tracer.flight = None


def _tiny_model(seed: int = 0):
    return spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                        width_scale=0.08, rng=np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("reqs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        c.reset()
        assert c.value == 0.0

    def test_gauge_set_and_callback(self):
        g = Gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0
        g.set_function(lambda: 42.0)
        assert g.value == 42.0
        g.set_function(lambda: 1 / 0)  # a broken callback must not raise
        assert math.isnan(g.value)

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.max == 50.0
        assert h.bucket_counts() == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}

    def test_histogram_window_is_bounded_and_recent(self):
        h = Histogram("lat", buckets=(1.0,), max_samples=10)
        for i in range(100):
            h.observe(float(i))
        window = h.window()
        assert window == [float(i) for i in range(90, 100)]
        # Bucket counts stay exact over the lifetime, not the window.
        assert h.bucket_counts()["+Inf"] == 100

    def test_histogram_quantiles_use_shared_percentile_math(self):
        from repro.metrics.profiler import summarize_latencies

        h = Histogram("lat", buckets=(1.0,))
        values = [float(i) for i in range(1, 101)]
        for value in values:
            h.observe(value)
        assert h.quantile_summary() == summarize_latencies(values)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", labels={"model": "m"})
        b = reg.counter("hits", labels={"model": "m"})
        assert a is b
        # Same name, different labels: a distinct series.
        c = reg.counter("hits", labels={"model": "n"})
        assert c is not a

    def test_type_mismatch_is_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x")

    def test_register_replace_repoints_the_scrape(self):
        reg = MetricsRegistry()
        old = Counter("reqs", labels={"model": "m"})
        new = Counter("reqs", labels={"model": "m"})
        reg.register(old)
        assert reg.register(old) is old  # idempotent without replace
        reg.register(new, replace=True)
        new.inc(7)
        assert reg.get("reqs", labels={"model": "m"}).value == 7.0

    def test_snapshot_and_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("reqs", help="requests", labels={"model": "m"}).inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat", buckets=(0.5, 1.0)).observe(0.25)
        snap = reg.snapshot()
        assert snap["reqs"][0]["value"] == 3.0
        assert snap["lat"][0]["buckets"]["0.5"] == 1
        assert "p99_s" in snap["lat"][0]["quantiles"]
        json.dumps(snap)  # must be JSON-able as-is
        text = reg.to_prometheus()
        assert "# HELP reqs requests" in text
        assert "# TYPE reqs counter" in text
        assert 'reqs{model="m"} 3' in text
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_unregister(self):
        reg = MetricsRegistry()
        reg.counter("x")
        assert reg.unregister("x") is True
        assert reg.unregister("x") is False
        assert reg.get("x") is None


class TestServerStats:
    def test_latency_reservoir_is_capped(self):
        stats = ServerStats(max_samples=16)
        for i in range(100):
            stats.record_request(float(i))
        assert stats.requests == 100
        assert len(stats.latency_histogram.window()) == 16
        # Lifetime max survives even after the spike left the window.
        stats2 = ServerStats(max_samples=4)
        stats2.record_request(9.0)
        for _ in range(10):
            stats2.record_request(0.001)
        assert stats2.latency_summary()["max_s"] == 9.0

    def test_table_keys_and_qps(self):
        stats = ServerStats()
        stats.record_request(0.010, timestamp=1.0)
        stats.record_request(0.020, timestamp=2.0)
        stats.record_batch(2, 0.015)
        stats.record_cache(hit=True)
        stats.record_cache(hit=False)
        table = stats.as_table()
        for key in ("requests", "batches", "qps", "mean_batch_fill",
                    "p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms",
                    "cache_hits", "cache_misses"):
            assert key in table
        assert table["requests"] == 2.0
        assert table["qps"] > 0
        assert stats.mean_batch_fill() == 2.0
        assert "batch_fill" in stats.format_table()
        stats.reset()
        assert stats.requests == 0 and stats.latency_summary()["p50_s"] == 0.0

    def test_named_stats_register_in_default_registry(self):
        stats = ServerStats(name="obs-test-model")
        try:
            stats.record_request(0.001)
            found = default_registry().get("repro_serve_requests_total",
                                           labels={"model": "obs-test-model"})
            assert found is not None and found.value == 1.0
            # A replacement collector (hot-swap) repoints the same series.
            stats2 = ServerStats(name="obs-test-model")
            stats2.record_request(0.001)
            found = default_registry().get("repro_serve_requests_total",
                                           labels={"model": "obs-test-model"})
            assert found.value == 1.0
        finally:
            for metric in ("repro_serve_request_latency_seconds",
                           "repro_serve_requests_total",
                           "repro_serve_batches_total",
                           "repro_serve_cache_hits_total",
                           "repro_serve_cache_misses_total"):
                default_registry().unregister(metric,
                                              labels={"model": "obs-test-model"})


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_disabled_tracing_returns_the_shared_noop(self):
        tracer = get_tracer()
        tracer.enabled = False
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.start_span("anything") is None
        with tracer.span("x") as sp:
            sp.set_attr("a", 1)  # all mutators are no-ops
            sp.add_event("e")
        assert current_span() is None

    def test_spans_nest_through_context_vars(self):
        tracer = get_tracer()
        tracer.enabled = True
        with tracer.span("outer", a=1) as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
        assert current_span() is None
        assert outer.children == [inner]
        assert outer.duration_s is not None
        assert outer.find("inner") is inner
        assert [s.name for s in outer.walk()] == ["outer", "inner"]

    def test_exception_marks_error_status(self):
        tracer = get_tracer()
        tracer.enabled = True
        with pytest.raises(RuntimeError):
            with tracer.span("failing") as sp:
                raise RuntimeError("boom")
        assert sp.status == "error"
        assert "boom" in sp.attrs["error"]

    def test_manual_span_survives_a_thread_hop(self):
        tracer = get_tracer()
        tracer.enabled = True
        root = tracer.start_span("request")
        seen = {}

        def worker():
            assert current_span() is None  # fresh thread, fresh context
            with tracer.activate(root):
                with tracer.span("compute") as sp:
                    seen["span"] = sp
            tracer.finish_span(root)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["span"].parent_id == root.span_id
        assert root.children == [seen["span"]]

    def test_add_timed_children_lays_kernels_out_sequentially(self):
        tracer = get_tracer()
        tracer.enabled = True
        parent = tracer.start_span("replay")
        tracer.add_timed_children(parent, [("conv@numpy", 0.5, 4),
                                           ("lif@codegen", 0.25, 2)])
        tracer.finish_span(parent)
        first, second = parent.children
        assert first.duration_s == pytest.approx(0.5)
        assert second.duration_s == pytest.approx(0.25)
        assert second.start_perf == pytest.approx(first.start_perf + 0.5)
        assert first.attrs["calls"] == 4

    def test_kernel_sampler_rate(self):
        tracer = get_tracer()
        tracer.enabled = True
        tracer.set_kernel_sample_rate(0.25)
        hits = sum(tracer.sample_kernels() for _ in range(100))
        assert hits == 25
        tracer.set_kernel_sample_rate(1.0)
        assert all(tracer.sample_kernels() for _ in range(5))
        tracer.set_kernel_sample_rate(0.0)
        assert not any(tracer.sample_kernels() for _ in range(5))
        with pytest.raises(ValueError):
            tracer.set_kernel_sample_rate(1.5)

    def test_module_level_event_helper(self):
        tracer = get_tracer()
        tracer.enabled = True
        obs.event("orphan")  # no current span: silently dropped
        with tracer.span("holder") as sp:
            obs.event("marker", detail=7)
        assert sp.events[0][1] == "marker"
        assert sp.events[0][2] == {"detail": 7}


# ---------------------------------------------------------------------------
# exporters + flight recorder
# ---------------------------------------------------------------------------


class TestExporters:
    def test_chrome_trace_is_valid_and_complete(self):
        chrome = ChromeTraceExporter()
        tracer = obs.configure(enabled=True, exporters=[chrome],
                               flight_capacity=None)
        with tracer.span("parent", model="m"):
            with tracer.span("child") as child:
                child.add_event("tick", n=1)
        data = json.loads(chrome.to_json())
        events = data["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"parent", "child"}
        assert instants[0]["name"] == "tick"
        parent = next(e for e in complete if e["name"] == "parent")
        assert parent["args"]["model"] == "m"
        assert parent["dur"] >= 0 and parent["ts"] > 0

    def test_chrome_trace_write_and_bound(self, tmp_path):
        chrome = ChromeTraceExporter(max_events=3)
        tracer = obs.configure(enabled=True, exporters=[chrome],
                               flight_capacity=None)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(chrome.trace_events()) == 3
        path = tmp_path / "trace.json"
        chrome.write(str(path))
        assert len(json.loads(path.read_text())["traceEvents"]) == 3

    def test_jsonl_exporter_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        jsonl = JSONLExporter(path=str(path))
        tracer = obs.configure(enabled=True, exporters=[jsonl],
                               flight_capacity=None)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["b", "a"]  # finish order
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_broken_exporter_never_breaks_the_traced_code(self):
        class Broken:
            def export(self, span):
                raise RuntimeError("exporter bug")

        tracer = obs.configure(enabled=True, exporters=[Broken()],
                               flight_capacity=None)
        with tracer.span("safe"):
            pass  # must not raise


class TestFlightRecorder:
    def _finished(self, name: str, duration: float) -> Span:
        span = Span(name)
        span.duration_s = duration
        return span

    def test_keeps_the_k_slowest(self):
        recorder = FlightRecorder(capacity=3, names=None)
        for duration in (0.1, 0.5, 0.2, 0.9, 0.05, 0.3):
            recorder.record(self._finished("serve.request", duration))
        assert [s.duration_s for s in recorder.slowest()] == [0.9, 0.5, 0.3]
        assert recorder.threshold_s() == 0.3
        assert recorder.considered == 6 and len(recorder) == 3

    def test_name_filter(self):
        recorder = FlightRecorder(capacity=2)  # default: serve.request only
        assert not recorder.record(self._finished("train.step", 1.0))
        assert recorder.record(self._finished("serve.request", 0.1))
        assert len(recorder) == 1

    def test_report_serialises_full_trees(self):
        recorder = FlightRecorder(capacity=2, names=None)
        root = self._finished("serve.request", 0.2)
        child = Span("serve.batch", parent=root)
        child.duration_s = 0.1
        root.children.append(child)
        recorder.record(root)
        report = recorder.report()
        assert report["capacity"] == 2 and report["retained"] == 1
        assert report["traces"][0]["children"][0]["name"] == "serve.batch"
        json.dumps(report)


# ---------------------------------------------------------------------------
# integration
# ---------------------------------------------------------------------------


class TestServeTracing:
    def test_request_tree_is_connected_down_to_kernels(self):
        obs.configure(enabled=True, exporters=[], kernel_sample_rate=1.0,
                      flight_capacity=4)
        # max_batch_size=1 pins every request to the batch-1 plan the warm-up
        # captured, so each traced request deterministically hits a *replay*.
        server = InferenceServer(max_batch_size=1, max_wait_ms=0.0,
                                 cache_capacity=0)
        try:
            server.register("traced", _tiny_model(), compile=True,
                            warmup_sample=np.zeros(SAMPLE_SHAPE, np.float32))
            rng = np.random.default_rng(0)
            for _ in range(4):
                server.infer("traced",
                             rng.random(SAMPLE_SHAPE).astype(np.float32),
                             timeout=60)
        finally:
            server.close()
        traces = obs.flight_recorder().slowest()
        assert traces, "flight recorder saw no request traces"
        replayed = [t for t in traces if t.find("runtime.replay") is not None]
        assert replayed, [t.to_dict(with_children=True) for t in traces]
        root = replayed[0]
        assert root.name == "serve.request"
        assert root.attrs["model"] == "traced"
        assert root.find("serve.queue_wait") is not None
        batch = root.find("serve.batch")
        assert batch is not None and batch.attrs["batch_size"] >= 1
        engine_span = root.find("engine.infer")
        assert engine_span is not None and engine_span.attrs["compiled"]
        replay = root.find("runtime.replay")
        kernels = replay.children
        assert kernels, "kernel_sample_rate=1.0 must emit per-kernel children"
        assert all("@" in k.name for k in kernels)
        from repro.metrics.profiler import kernel_backend
        assert {kernel_backend(k.name) for k in kernels} >= {"numpy"}

    def test_shared_batch_span_appears_in_every_riders_tree(self):
        obs.configure(enabled=True, exporters=[], flight_capacity=8)
        release = threading.Event()

        def slow_infer(batch):
            release.wait(timeout=10)
            return batch.mean(axis=(1, 2, 3))

        batcher = MicroBatcher(slow_infer, max_batch_size=4, max_wait_ms=50.0,
                               name="shared")
        try:
            futures = [batcher.submit(np.full(SAMPLE_SHAPE, np.float32(i)))
                       for i in range(3)]
            release.set()
            for future in futures:
                future.result(timeout=30)
        finally:
            batcher.close()
        traces = obs.flight_recorder().slowest()
        assert len(traces) == 3
        batch_spans = {id(t.find("serve.batch")) for t in traces}
        assert len(batch_spans) == 1, "one fused batch = one shared span object"
        assert all(t.find("serve.queue_wait") is not None for t in traces)

    def test_batch_exception_marks_request_spans(self):
        obs.configure(enabled=True, exporters=[], flight_capacity=4)

        def exploding(batch):
            raise ValueError("engine down")

        batcher = MicroBatcher(exploding, max_batch_size=4, max_wait_ms=1.0)
        try:
            future = batcher.submit(np.zeros(SAMPLE_SHAPE, np.float32))
            with pytest.raises(ValueError, match="engine down"):
                future.result(timeout=30)
        finally:
            batcher.close()
        (trace,) = obs.flight_recorder().slowest()
        assert trace.status == "error"
        assert trace.find("serve.batch").status == "error"

    def test_cache_hit_requests_are_traced_too(self):
        obs.configure(enabled=True, exporters=[], flight_capacity=8)
        server = InferenceServer(max_batch_size=4, max_wait_ms=1.0,
                                 cache_capacity=8)
        try:
            server.register("cached", _tiny_model())
            sample = np.ones(SAMPLE_SHAPE, np.float32)
            server.infer("cached", sample, timeout=60)
            server.infer("cached", sample, timeout=60)  # served from cache
        finally:
            server.close()
        traces = obs.flight_recorder().slowest()
        hits = [t for t in traces if t.attrs.get("cache") == "hit"]
        assert len(hits) == 1
        assert hits[0].events[0][1] == "cache_hit"

    def test_registry_publish_spans(self):
        jsonl = JSONLExporter()
        obs.configure(enabled=True, exporters=[jsonl], flight_capacity=None)
        registry = ModelRegistry()
        registry.register("pub", _tiny_model(),
                          warmup_sample=np.zeros(SAMPLE_SHAPE, np.float32))
        registry.swap("pub", _tiny_model(seed=1))
        publishes = [r for r in jsonl.records if r["name"] == "serve.publish"]
        assert [p["attrs"]["action"] for p in publishes] == ["register", "swap"]
        register = publishes[0]
        assert register["attrs"]["model"] == "pub"
        assert register["attrs"]["version"] == "1"
        assert any(e["name"] == "warmup" for e in register["events"])
        # engine.warmup nested under the register publish
        warmups = [r for r in jsonl.records if r["name"] == "engine.warmup"]
        assert warmups and warmups[0]["trace_id"] == register["trace_id"]

    def test_debug_report_bundles_everything(self):
        obs.configure(enabled=True, exporters=[], flight_capacity=4)
        server = InferenceServer(max_batch_size=4, max_wait_ms=1.0,
                                 cache_capacity=0)
        try:
            server.register("dbg", _tiny_model(), compile=True)
            server.infer("dbg", np.zeros(SAMPLE_SHAPE, np.float32), timeout=60)
            report = server.debug_report()
        finally:
            server.close()
        assert set(report) == {"models", "registry", "metrics", "flight", "runtime"}
        assert report["models"]["dbg"]["requests"] >= 1
        assert report["registry"][0]["name"] == "dbg"
        assert report["flight"]["retained"] >= 1
        assert report["flight"]["traces"][0]["name"] == "serve.request"
        assert report["runtime"]["dbg"]["captures"] >= 1
        assert "repro_serve_requests_total" in report["metrics"]
        json.dumps(report)


class TestTrainTracing:
    def test_eager_step_splits_into_stages(self):
        jsonl = JSONLExporter()
        obs.configure(enabled=True, exporters=[jsonl], flight_capacity=None)
        trainer = BPTTTrainer(_tiny_model(),
                              TrainingConfig(timesteps=2, batch_size=4))
        rng = np.random.default_rng(0)
        images = rng.random((8, 3, 10, 10)).astype(np.float32)
        labels = rng.integers(0, 4, 8)
        loader = DataLoader(ArrayDataset(images, labels), batch_size=4,
                            shuffle=False)
        trainer.train_epoch(loader, epoch=3)
        names = [r["name"] for r in jsonl.records]
        for expected in ("train.epoch", "train.data_wait", "train.step",
                         "train.forward", "train.backward", "train.optimizer"):
            assert expected in names, names
        epoch = next(r for r in jsonl.records if r["name"] == "train.epoch")
        assert epoch["attrs"] == {"epoch": 3, "batches": 2}
        steps = [r for r in jsonl.records if r["name"] == "train.step"]
        assert len(steps) == 2
        assert all(s["trace_id"] == epoch["trace_id"] for s in steps)

    def test_compiled_step_traces_capture_then_replay(self):
        jsonl = JSONLExporter()
        obs.configure(enabled=True, exporters=[jsonl], kernel_sample_rate=1.0,
                      flight_capacity=None)
        trainer = BPTTTrainer(_tiny_model(),
                              TrainingConfig(timesteps=2, batch_size=4),
                              compile=True)
        rng = np.random.default_rng(0)
        data = rng.random((4, 3, 10, 10)).astype(np.float32)
        labels = rng.integers(0, 4, 4)
        trainer.train_step(data, labels)
        trainer.train_step(data, labels)
        names = [r["name"] for r in jsonl.records]
        assert "runtime.capture" in names and "runtime.replay" in names
        replay = next(r for r in jsonl.records if r["name"] == "runtime.replay")
        assert replay["attrs"]["kind"] == "train"
        kernel_spans = [r for r in jsonl.records
                        if r["parent_id"] == replay["span_id"]]
        assert kernel_spans and all("@" in r["name"] for r in kernel_spans)

    def test_prefetch_failure_lands_in_the_consumers_trace(self):
        jsonl = JSONLExporter()
        tracer = obs.configure(enabled=True, exporters=[jsonl],
                               flight_capacity=None)

        class Exploding(ArrayDataset):
            def __getitem__(self, index):
                if index == 5:
                    raise RuntimeError("corrupt shard")
                return super().__getitem__(index)

        rng = np.random.default_rng(0)
        dataset = Exploding(rng.random((8, 3, 10, 10)).astype(np.float32),
                            rng.integers(0, 4, 8))
        loader = DataLoader(dataset, batch_size=2, shuffle=False, prefetch=True)
        with pytest.raises(RuntimeError, match="corrupt shard"):
            with tracer.span("train.epoch") as epoch_span:
                for _ in loader:
                    pass
        errors = [r for r in jsonl.records if r["name"] == "data.prefetch_error"]
        assert len(errors) == 1
        error = errors[0]
        assert error["status"] == "error"
        assert "corrupt shard" in error["attrs"]["error"]
        assert error["attrs"]["batches_assembled"] == 2
        assert error["trace_id"] == epoch_span.trace_id
        assert error["parent_id"] == epoch_span.span_id

    def test_prefetch_is_untraced_and_working_when_disabled(self):
        rng = np.random.default_rng(0)
        dataset = ArrayDataset(rng.random((8, 3, 10, 10)).astype(np.float32),
                               rng.integers(0, 4, 8))
        loader = DataLoader(dataset, batch_size=4, shuffle=False, prefetch=True)
        assert sum(1 for _ in loader) == 2


class TestSearchTracing:
    def test_candidate_evaluations_are_traced_with_cache_flag(self):
        from repro.data.synthetic import make_static_image_dataset
        from repro.models.specs import vgg_layer_specs
        from repro.models.vgg import VGG9_CONFIG
        from repro.search import SearchConfig, Searcher, TTSupernet

        jsonl = JSONLExporter()
        obs.configure(enabled=True, exporters=[jsonl], flight_capacity=None)
        supernet = TTSupernet(_tiny_model(), max_rank=8)
        train = make_static_image_dataset(16, 4, height=10, width=10, seed=1)
        val = make_static_image_dataset(16, 4, height=10, width=10, seed=2)
        searcher = Searcher(supernet, train, val,
                            vgg_layer_specs(VGG9_CONFIG, num_classes=4),
                            config=SearchConfig(warmup_epochs=0, batch_size=8,
                                                eval_batch_size=16, seed=0))
        config = searcher.space.random_config(np.random.default_rng(0))
        searcher.evaluate_config(config)
        searcher.evaluate_config(config)  # second call hits the eval cache
        candidates = [r for r in jsonl.records if r["name"] == "search.candidate"]
        assert [c["attrs"]["cached"] for c in candidates] == [False, True]
        assert "accuracy" in candidates[0]["attrs"]
        assert "cost" in candidates[0]["attrs"]


class TestRuntimeMetrics:
    def test_compiled_runtime_counters_and_gauges(self):
        trainer = BPTTTrainer(_tiny_model(),
                              TrainingConfig(timesteps=2, batch_size=4),
                              compile=True)
        rng = np.random.default_rng(0)
        data = rng.random((4, 3, 10, 10)).astype(np.float32)
        labels = rng.integers(0, 4, 4)
        registry = default_registry()
        captures = registry.get("repro_runtime_captures_total")
        replays = registry.get("repro_runtime_replays_total")
        before_c = captures.value if captures else 0.0
        before_r = replays.value if replays else 0.0
        trainer.train_step(data, labels)
        trainer.train_step(data, labels)
        captures = registry.get("repro_runtime_captures_total")
        replays = registry.get("repro_runtime_replays_total")
        assert captures.value == before_c + 1
        assert replays.value == before_r + 1
        # Pull gauges aggregate over live runtimes; with a numpy backend the
        # node counts are zero but the gauge must exist and answer.
        native = registry.get("repro_runtime_native_nodes")
        assert native is not None and math.isfinite(native.value)

    def test_prometheus_endpoint_serves_the_default_registry(self):
        import urllib.request

        server = obs.serve_metrics(port=0)
        try:
            port = server.server_address[1]
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
            assert "# TYPE" in body
            with pytest.raises(Exception):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=10)
        finally:
            server.shutdown()
