"""Tests for data-parallel training: shm primitives, pool, trainer, search fan-out."""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.data.datasets import DataLoader
from repro.data.synthetic import make_event_dataset, make_static_image_dataset
from repro.models.resnet import spiking_resnet18
from repro.parallel import (
    DataParallelTrainer,
    ParamBlock,
    SharedArray,
    WorkerCrashError,
    WorkerPool,
    split_batch,
    tree_reduce_rows,
)
from repro.training.checkpoint import load_training_state, save_training_state
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(not FORK_AVAILABLE,
                                reason="data-parallel pool needs fork start method")


def tiny_model(seed: int = 0):
    # norm="none": BN computes per-shard batch statistics, which is standard
    # DDP semantics but breaks exact parity with one monolithic batch; the
    # parity tests therefore use a normalisation-free model.
    return spiking_resnet18(num_classes=4, in_channels=3, timesteps=2,
                            width_scale=0.07, norm="none",
                            rng=np.random.default_rng(seed))


def tiny_config(**overrides):
    defaults = dict(timesteps=2, epochs=2, batch_size=8, learning_rate=0.05, seed=3)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture
def static_ds():
    return make_static_image_dataset(num_samples=24, num_classes=4, channels=3,
                                     height=12, width=12, seed=7)


def assert_no_segment(name: str) -> None:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    seg.close()
    raise AssertionError(f"shared-memory segment {name} was orphaned")


class TestShmPrimitives:
    def test_tree_reduce_matches_sum(self):
        rng = np.random.default_rng(0)
        for count in (1, 2, 3, 4, 5, 8):
            matrix = rng.standard_normal((count, 17))
            expected = matrix.sum(axis=0)
            reduced = tree_reduce_rows(matrix.copy(), count)
            np.testing.assert_allclose(reduced, expected, rtol=1e-12)

    def test_tree_reduce_deterministic_bits(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((4, 33))
        a = tree_reduce_rows(matrix.copy(), 4)
        b = tree_reduce_rows(matrix.copy(), 4)
        assert np.array_equal(a, b)

    def test_param_block_round_trip(self):
        model = tiny_model()
        params = [p for p in model.parameters() if p.requires_grad]
        block = ParamBlock((n, p) for n, p in model.named_parameters()
                           if p.requires_grad)
        flat = np.zeros(block.total)
        block.write_params(flat, params)
        originals = [p.data.copy() for p in params]
        for p in params:
            p.data[...] = 0.0
        block.read_params(flat, params)
        for p, original in zip(params, originals):
            assert np.array_equal(p.data, original)
            assert p.data.dtype == original.dtype

    def test_accumulate_and_assign_grads(self):
        model = tiny_model()
        params = [p for p in model.parameters() if p.requires_grad]
        block = ParamBlock((n, p) for n, p in model.named_parameters()
                           if p.requires_grad)
        rng = np.random.default_rng(2)
        for p in params:
            p.grad = rng.standard_normal(p.data.shape).astype(p.data.dtype)
        row = np.zeros(block.total)
        block.accumulate_grads(row, params, 0.5)
        block.accumulate_grads(row, params, 0.5)
        reference = [p.grad.copy() for p in params]
        for p in params:
            p.grad = None
        block.assign_grads(row, params)
        for p, ref in zip(params, reference):
            np.testing.assert_allclose(p.grad, ref, rtol=1e-6)
            assert p.grad.dtype == p.data.dtype

    def test_shared_array_create_attach_unlink(self):
        owner = SharedArray.create("test", (4, 5))
        owner.array[:] = 7.5
        view = SharedArray.attach(owner.name, (4, 5))
        assert np.all(view.array == 7.5)
        view.array[0, 0] = -1.0
        assert owner.array[0, 0] == -1.0
        name = owner.name
        view.close()
        owner.unlink()
        owner.unlink()  # idempotent
        assert_no_segment(name)


class TestSplitBatch:
    def test_static_batch_splits_on_axis0(self):
        data = np.arange(8 * 3).reshape(8, 3, 1, 1).astype(np.float32)
        labels = np.arange(8)
        shards = split_batch(data, labels, 3)
        assert [s[0].shape[0] for s in shards] == [3, 3, 2]
        np.testing.assert_array_equal(np.concatenate([s[0] for s in shards]), data)
        np.testing.assert_array_equal(np.concatenate([s[1] for s in shards]), labels)

    def test_event_batch_splits_on_axis1(self):
        data = np.zeros((3, 6, 2, 4, 4), dtype=np.float32)  # (T, N, C, H, W)
        labels = np.arange(6)
        shards = split_batch(data, labels, 2)
        assert all(s[0].shape[0] == 3 for s in shards)
        assert [s[0].shape[1] for s in shards] == [3, 3]

    def test_more_shards_than_samples_yields_empty_tail(self):
        data = np.zeros((2, 3, 4, 4), dtype=np.float32)
        shards = split_batch(data, np.arange(2), 4)
        assert [s[1].shape[0] for s in shards] == [1, 1, 0, 0]


class TestDataParallelParity:
    def test_two_worker_losses_match_single_process(self, static_ds):
        config = tiny_config()
        data, labels = next(iter(DataLoader(static_ds, batch_size=8, shuffle=False)))
        single = BPTTTrainer(tiny_model(), config, compile=True)
        reference = [single.train_step(data, labels) for _ in range(3)]
        with DataParallelTrainer(tiny_model(), config, num_workers=2) as dp:
            parallel = [dp.train_step(data, labels) for _ in range(3)]
        for ref, par in zip(reference, parallel):
            assert abs(ref["loss"] - par["loss"]) <= 1e-6
            assert ref["accuracy"] == par["accuracy"]

    def test_accum_fallback_bitwise_matches_two_workers(self, static_ds):
        config = tiny_config()
        data, labels = next(iter(DataLoader(static_ds, batch_size=8, shuffle=False)))
        with DataParallelTrainer(tiny_model(), config, num_workers=2) as two:
            losses_two = [two.train_step(data, labels)["loss"] for _ in range(3)]
        with DataParallelTrainer(tiny_model(), config, num_workers=1,
                                 accum_steps=2) as accum:
            losses_accum = [accum.train_step(data, labels)["loss"] for _ in range(3)]
        # Same micro-shard decomposition, same float64 accumulator: the only
        # difference is *where* the shards ran, so the bits must agree.
        assert losses_two == losses_accum

    def test_event_data_parallel_step(self):
        from repro.models.vgg import spiking_vgg9

        ds = make_event_dataset(num_samples=12, num_classes=4, timesteps=3,
                                channels=2, height=12, width=12, seed=7)
        config = tiny_config(timesteps=3, batch_size=6)
        model = spiking_vgg9(num_classes=4, in_channels=2, timesteps=3,
                             width_scale=0.1, norm="none",
                             rng=np.random.default_rng(0))
        data, labels = next(iter(DataLoader(ds, batch_size=6, shuffle=False)))
        with DataParallelTrainer(model, config, num_workers=2) as dp:
            stats = dp.train_step(data, labels)
        assert np.isfinite(stats["loss"])

    def test_epoch_training_reduces_loss(self, static_ds):
        config = tiny_config(epochs=4)
        with DataParallelTrainer(tiny_model(), config, num_workers=2,
                                 train_dataset=static_ds) as dp:
            history = dp.fit(epochs=4)
        assert history[-1].loss < history[0].loss

    def test_epoch_parity_with_accum_fallback(self, static_ds):
        config = tiny_config()
        with DataParallelTrainer(tiny_model(), config, num_workers=2,
                                 train_dataset=static_ds) as two:
            two.fit(epochs=1)
        with DataParallelTrainer(tiny_model(), config, num_workers=1,
                                 accum_steps=2, train_dataset=static_ds) as accum:
            accum.fit(epochs=1)
        assert two.step_loss_history == accum.step_loss_history

    def test_batch_size_must_cover_shards(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(tiny_model(), tiny_config(batch_size=2),
                                num_workers=2, accum_steps=2)


class TestCheckpointResume:
    def test_mid_epoch_kill_and_resume_reproduces_curve(self, static_ds, tmp_path):
        config = tiny_config()
        path = str(tmp_path / "dp.ckpt")

        reference = DataParallelTrainer(tiny_model(), config, num_workers=2,
                                        train_dataset=static_ds)
        with reference:
            reference.fit(epochs=2)

        killed = DataParallelTrainer(tiny_model(), config, num_workers=2,
                                     train_dataset=static_ds)
        killed.train_epoch(0)
        killed.train_epoch(1, max_batches=2)
        assert killed._cursor == {"epoch": 1, "batch": 2}
        killed.save_checkpoint(path)
        prefix = list(killed.step_loss_history)
        segments = killed._pool.segment_names
        killed._pool.kill()  # simulated crash: no graceful handshake
        for name in segments:
            assert_no_segment(name)

        resumed = DataParallelTrainer(tiny_model(), config, num_workers=2,
                                      train_dataset=static_ds)
        resumed.load_checkpoint(path)
        with resumed:
            resumed.fit(epochs=2)
        assert prefix + resumed.step_loss_history == reference.step_loss_history

    def test_elastic_resume_different_worker_count(self, static_ds, tmp_path):
        config = tiny_config()
        path = str(tmp_path / "dp.ckpt")
        reference = DataParallelTrainer(tiny_model(), config, num_workers=2,
                                        train_dataset=static_ds)
        with reference:
            reference.fit(epochs=2)

        first = DataParallelTrainer(tiny_model(), config, num_workers=2,
                                    train_dataset=static_ds)
        with first:
            first.train_epoch(0)
            first.save_checkpoint(path)
        prefix = list(first.step_loss_history)

        # Resume the 2-worker checkpoint on 1 worker with gradient
        # accumulation: same micro-shard decomposition, same curve.
        resumed = DataParallelTrainer(tiny_model(), config, num_workers=1,
                                      accum_steps=2, train_dataset=static_ds)
        resumed.load_checkpoint(path)
        with resumed:
            resumed.fit(epochs=2)
        curve = prefix + resumed.step_loss_history
        assert all(abs(a - b) <= 1e-6
                   for a, b in zip(curve, reference.step_loss_history))

    def test_checkpoint_restores_scheduler_and_history(self, static_ds, tmp_path):
        config = tiny_config()
        path = str(tmp_path / "dp.ckpt")
        a = DataParallelTrainer(tiny_model(), config, num_workers=2,
                                train_dataset=static_ds)
        with a:
            a.fit(epochs=1)
            a.save_checkpoint(path)
        b = DataParallelTrainer(tiny_model(), config, num_workers=2,
                                train_dataset=static_ds)
        state = b.load_checkpoint(path)
        assert b.optimizer.lr == a.optimizer.lr
        assert b.scheduler.last_epoch == a.scheduler.last_epoch
        assert len(b.history) == 1
        assert state["extra"]["num_workers"] == 2

    def test_save_training_state_standalone(self, tmp_path):
        model = tiny_model()
        path = str(tmp_path / "model.ckpt")
        save_training_state(path, model, cursor={"epoch": 5, "batch": 2},
                            extra={"tag": "unit"})
        fresh = tiny_model(seed=9)
        state = load_training_state(path, fresh)
        assert state["cursor"] == {"epoch": 5, "batch": 2}
        assert state["extra"]["tag"] == "unit"
        for (_, a), (_, b) in zip(model.named_parameters(),
                                  fresh.named_parameters()):
            assert np.array_equal(a.data, b.data)


class TestWorkerCrash:
    def test_worker_exception_propagates_and_cleans_up(self, static_ds):
        config = tiny_config()
        dp = DataParallelTrainer(tiny_model(), config, num_workers=2)
        data, labels = next(iter(DataLoader(static_ds, batch_size=8, shuffle=False)))
        dp.train_step(data, labels)
        pool = dp._pool
        segments = pool.segment_names
        # Ship a poisoned batch: out-of-range labels raise in the worker's loss.
        with pytest.raises(WorkerCrashError) as err:
            dp.train_step(data, np.full_like(labels, 99))
        assert err.value.remote_traceback is not None
        assert pool.closed
        for name in segments:
            assert_no_segment(name)

    def test_dead_worker_process_detected(self, static_ds):
        config = tiny_config()
        pool = WorkerPool(tiny_model(), 2, timesteps=2,
                          effective_batch=config.batch_size)
        segments = pool.segment_names
        pool._procs[1].terminate()
        pool._procs[1].join()
        with pytest.raises(WorkerCrashError, match="worker 1"):
            pool.ping()
        for name in segments:
            assert_no_segment(name)

    def test_unknown_command_reports_remote_traceback(self):
        pool = WorkerPool(tiny_model(), 1, timesteps=2, effective_batch=8)
        pool.send(0, {"cmd": "does-not-exist"})
        with pytest.raises(WorkerCrashError, match="does-not-exist"):
            pool.gather()

    def test_close_is_idempotent_and_reaps_children(self):
        pool = WorkerPool(tiny_model(), 2, timesteps=2, effective_batch=8)
        procs = list(pool._procs)
        assert pool.ping() == [0, 1]
        pool.close()
        pool.close()
        assert all(not p.is_alive() for p in procs)


class TestParallelSearch:
    def test_parallel_candidate_evaluation_matches_sequential(self):
        from repro.models.specs import vgg_layer_specs
        from repro.models.vgg import VGG9_CONFIG, spiking_vgg9
        from repro.search import RandomSearch, SearchConfig, Searcher, TTSupernet

        def build():
            model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                                 width_scale=0.12, rng=np.random.default_rng(0))
            return TTSupernet(model, max_rank=8)

        train = make_static_image_dataset(32, 4, height=14, width=14,
                                          noise=0.25, seed=1)
        val = make_static_image_dataset(24, 4, height=14, width=14,
                                        noise=0.25, seed=2)
        specs = vgg_layer_specs(VGG9_CONFIG, num_classes=4)

        def run(num_workers):
            searcher = Searcher(
                build(), train, val, specs,
                config=SearchConfig(warmup_epochs=1, batch_size=16,
                                    eval_batch_size=24, cost_metric="macs",
                                    finetune_epochs=0, seed=0),
                strategy=RandomSearch(num_samples=3),
                num_workers=num_workers)
            result = searcher.run()
            assert searcher._pool is None or searcher._pool.closed
            return [(searcher.space.encode(p.config), p.accuracy,
                     p.cost.scalar("macs")) for p in result.evaluated]

        assert run(2) == run(1)

    def test_evaluate_configs_uses_cache(self):
        from repro.models.specs import vgg_layer_specs
        from repro.models.vgg import VGG9_CONFIG, spiking_vgg9
        from repro.search import SearchConfig, Searcher, TTSupernet

        model = spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                             width_scale=0.12, rng=np.random.default_rng(0))
        supernet = TTSupernet(model, max_rank=8)
        train = make_static_image_dataset(16, 4, height=14, width=14, seed=1)
        val = make_static_image_dataset(16, 4, height=14, width=14, seed=2)
        searcher = Searcher(
            supernet, train, val, vgg_layer_specs(VGG9_CONFIG, num_classes=4),
            config=SearchConfig(warmup_epochs=0, eval_batch_size=16,
                                cost_metric="macs", finetune_epochs=0),
            num_workers=2)
        try:
            config = searcher.space.random_config(np.random.default_rng(0))
            first = searcher.evaluate_configs([config, config])
            assert first[0] is first[1]  # in-batch dedup
            again = searcher.evaluate_configs([config])
            assert again[0] is first[0]  # cross-call cache, no new worker round
        finally:
            searcher.close()


class TestObsIntegration:
    def test_worker_spans_and_allreduce_metrics(self, static_ds):
        from repro.obs.metrics import default_registry
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        captured = []

        class Capture:
            def export(self, span):
                captured.append(span)

        previous_exporters = tracer.exporters
        tracer.enabled = True
        tracer.set_exporters([Capture()])
        try:
            config = tiny_config()
            data, labels = next(iter(DataLoader(static_ds, batch_size=8,
                                                shuffle=False)))
            with DataParallelTrainer(tiny_model(), config, num_workers=2) as dp:
                dp.train_step(data, labels)
        finally:
            tracer.enabled = False
            tracer.set_exporters(previous_exporters)

        steps = [s for s in captured if s.name == "train.step"]
        assert len(steps) == 1
        step = steps[0]
        workers = [c for c in step.children if c.name == "train.worker"]
        assert sorted(c.attrs["rank"] for c in workers) == [0, 1]
        assert sum(c.attrs["n"] for c in workers) == 8
        assert step.find("train.allreduce") is not None
        assert step.find("train.optimizer") is not None

        hist = default_registry().get("train_allreduce_seconds")
        assert hist is not None and hist.snapshot()["count"] >= 1
        util = default_registry().get("train_worker_utilization",
                                      labels={"worker": "0"})
        assert util is not None and 0.0 <= util.value <= 1.0
