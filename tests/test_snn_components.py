"""Tests for encoders, spiking norms (tdBN/TEBN), TET loss, NDA augmentation and spike stats."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.snn.augment import NeuromorphicAugment, random_cutout, random_flip, random_roll
from repro.snn.encoding import DirectEncoder, EventFrameEncoder, PoissonEncoder
from repro.snn.functional import firing_rate, reset_model_state, spike_count, spike_sparsity
from repro.snn.loss import TETLoss, mean_output_cross_entropy
from repro.snn.neurons import LIFNeuron
from repro.snn.norm import TDBatchNorm2d, TEBatchNorm2d
from repro.nn.layers import Conv2d
from repro.nn.module import Module


class TestEncoders:
    def test_direct_encoder_repeats(self, rng):
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        out = DirectEncoder(timesteps=4)(images)
        assert out.shape == (4, 2, 3, 4, 4)
        np.testing.assert_array_equal(out[0], out[3])

    def test_direct_encoder_validates_shape(self):
        with pytest.raises(ValueError):
            DirectEncoder(4)(np.zeros((3, 4, 4)))

    def test_poisson_encoder_rate_matches_intensity(self):
        images = np.full((1, 1, 10, 10), 0.3, dtype=np.float32)
        spikes = PoissonEncoder(timesteps=200, seed=0)(images)
        assert spikes.mean() == pytest.approx(0.3, abs=0.03)
        assert set(np.unique(spikes)).issubset({0.0, 1.0})

    def test_event_encoder_truncates_and_pads(self, rng):
        frames = rng.random((5, 2, 2, 4, 4)).astype(np.float32)
        enc = EventFrameEncoder(timesteps=3)
        assert enc(frames).shape[0] == 3
        enc_long = EventFrameEncoder(timesteps=8)
        assert enc_long(frames).shape[0] == 8

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            DirectEncoder(0)


class TestSpikingNorms:
    def test_tdbn_scales_by_threshold(self, rng):
        x = Tensor(rng.standard_normal((8, 4, 5, 5)).astype(np.float32))
        tdbn = TDBatchNorm2d(4, v_threshold=0.5, alpha=1.0)
        out = tdbn(x)
        # Normalised then scaled by alpha * V_th = 0.5.
        assert out.data.std() == pytest.approx(0.5, rel=0.1)

    def test_tdbn_rejects_non_4d(self):
        with pytest.raises(ValueError):
            TDBatchNorm2d(4)(Tensor(np.ones((2, 4))))

    def test_tebn_advances_and_resets_time(self, rng):
        tebn = TEBatchNorm2d(3, timesteps=2)
        tebn.temporal_weight.data[:] = np.array([1.0, 0.5], dtype=np.float32)
        x = Tensor(rng.standard_normal((4, 3, 4, 4)).astype(np.float32))
        out_t0 = tebn(x)
        out_t1 = tebn(x)
        # Second timestep scaled by 0.5 relative to the first.
        np.testing.assert_allclose(out_t1.data, 0.5 * out_t0.data, rtol=1e-4, atol=1e-5)
        tebn.reset_time()
        out_again = tebn(x)
        np.testing.assert_allclose(out_again.data, out_t0.data, rtol=1e-4, atol=1e-5)

    def test_tebn_invalid_timesteps(self):
        with pytest.raises(ValueError):
            TEBatchNorm2d(3, timesteps=0)


class TestLosses:
    def test_mean_output_cross_entropy_averages_timesteps(self):
        good = Tensor(np.array([[5.0, -5.0]], dtype=np.float32))
        outputs = [good, good, good]
        loss = mean_output_cross_entropy(outputs, np.array([0]))
        assert loss.data < 1e-3

    def test_mean_output_requires_outputs(self):
        with pytest.raises(ValueError):
            mean_output_cross_entropy([], np.array([0]))

    def test_tet_loss_interpolates(self):
        outputs = [Tensor(np.array([[2.0, -2.0]], dtype=np.float32)) for _ in range(2)]
        labels = np.array([0])
        pure_ce = TETLoss(lamb=0.0)(outputs, labels)
        mixed = TETLoss(lamb=0.5, target_value=0.5)(outputs, labels)
        assert mixed.data != pytest.approx(float(pure_ce.data))
        assert np.isfinite(mixed.data)

    def test_tet_loss_invalid_lambda(self):
        with pytest.raises(ValueError):
            TETLoss(lamb=1.5)

    def test_tet_loss_backward(self):
        logits = Tensor(np.array([[1.0, -1.0]], dtype=np.float32), requires_grad=True)
        TETLoss(lamb=0.1)([logits], np.array([0])).backward()
        assert logits.grad is not None


class TestNDA:
    def test_flip_preserves_shape_and_content_set(self, rng):
        frames = rng.random((3, 1, 4, 4)).astype(np.float32)
        flipped = random_flip(frames, np.random.default_rng(0), probability=1.0)
        np.testing.assert_array_equal(flipped, frames[..., ::-1])

    def test_roll_is_permutation(self, rng):
        frames = rng.random((2, 1, 6, 6)).astype(np.float32)
        rolled = random_roll(frames, np.random.default_rng(1), max_shift=2)
        assert sorted(rolled.reshape(-1)) == pytest.approx(sorted(frames.reshape(-1)))

    def test_cutout_zeroes_region(self, rng):
        frames = np.ones((2, 1, 8, 8), dtype=np.float32)
        cut = random_cutout(frames, np.random.default_rng(2), max_fraction=0.5)
        assert cut.sum() < frames.sum()

    def test_augment_policy_shapes(self, rng):
        frames = rng.random((4, 3, 2, 8, 8)).astype(np.float32)   # (T, N, C, H, W)
        augmented = NeuromorphicAugment(seed=0)(frames)
        assert augmented.shape == frames.shape
        single = NeuromorphicAugment(seed=0)(frames[:, 0])
        assert single.shape == (4, 2, 8, 8)

    def test_augment_is_consistent_across_timesteps(self):
        """The same geometric transform must be applied to every timestep of a sample."""
        frames = np.zeros((2, 1, 1, 8, 8), dtype=np.float32)
        frames[:, :, :, 2, 2] = 1.0   # one event at the same place in both timesteps
        augmented = NeuromorphicAugment(flip_probability=1.0, max_shift=3, cutout_fraction=0.0,
                                        event_drop=0.0, seed=3)(frames)
        positions = [tuple(np.argwhere(augmented[t, 0, 0] > 0)[0]) for t in range(2)]
        assert positions[0] == positions[1]


class TestSpikeStats:
    def test_firing_rate_and_sparsity(self):
        spikes = Tensor(np.array([[1.0, 0.0, 0.0, 1.0]]))
        assert firing_rate(spikes) == pytest.approx(0.5)
        assert spike_sparsity(spikes) == pytest.approx(0.5)
        assert spike_count(spikes) == 2

    def test_reset_model_state_resets_lif_and_tebn(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(1, 2, 3, padding=1)
                self.lif = LIFNeuron()
                self.tebn = TEBatchNorm2d(2, timesteps=2)

            def forward(self, x):
                return self.lif(self.tebn(self.conv(x)))

        net = Net()
        net(Tensor(np.random.default_rng(0).random((1, 1, 4, 4)).astype(np.float32)))
        assert net.lif.membrane_potential is not None
        assert net.tebn._t == 1
        reset_model_state(net)
        assert net.lif.membrane_potential is None
        assert net.tebn._t == 0
