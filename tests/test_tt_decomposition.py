"""Tests for TT-SVD decomposition of convolution kernels (Eqs. 2-4)."""

import numpy as np
import pytest

from repro.tt.decomposition import (
    TTCores,
    circular_permute_weight,
    inverse_circular_permute_weight,
    max_tt_ranks,
    tt_cores_to_dense,
    tt_decompose_conv,
)


class TestCircularPermute:
    def test_permute_moves_output_axis_last(self, rng):
        w = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        permuted = circular_permute_weight(w)
        assert permuted.shape == (4, 3, 3, 8)
        np.testing.assert_array_equal(permuted[1, 2, 0, 5], w[5, 1, 2, 0])

    def test_inverse_round_trip(self, rng):
        w = rng.standard_normal((6, 5, 3, 3)).astype(np.float32)
        np.testing.assert_array_equal(inverse_circular_permute_weight(circular_permute_weight(w)), w)

    def test_rejects_wrong_rank_tensor(self):
        with pytest.raises(ValueError):
            circular_permute_weight(np.zeros((3, 3, 3)))


class TestMaxRanks:
    def test_limits(self):
        r1, r2, r3 = max_tt_ranks(64, 128, (3, 3))
        assert r1 == 64          # min(I, K*K*O)
        assert r2 == 64 * 3      # min(I*K, K*O) = min(192, 384)
        assert r3 == 128         # min(I*K*K, O)

    def test_small_channels(self):
        assert max_tt_ranks(4, 8, (3, 3)) == (4, 12, 8)


class TestTTDecompose:
    def test_full_rank_is_exact(self, rng):
        w = rng.standard_normal((8, 6, 3, 3)).astype(np.float32)
        cores = tt_decompose_conv(w, rank=max_tt_ranks(6, 8, (3, 3)))
        assert cores.relative_error < 1e-5
        np.testing.assert_allclose(tt_cores_to_dense(cores), w, atol=1e-4)

    def test_core_shapes(self, rng):
        w = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
        cores = tt_decompose_conv(w, rank=5)
        assert cores.w1.shape == (8, 5)
        assert cores.w2.shape == (5, 3, 5)
        assert cores.w3.shape == (5, 3, 5)
        assert cores.w4.shape == (5, 16)
        assert cores.ranks == (5, 5, 5)

    def test_conv_weight_shapes(self, rng):
        w = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
        cores = tt_decompose_conv(w, rank=4)
        c1, c2, c3, c4 = cores.conv_weights()
        assert c1.shape == (4, 8, 1, 1)
        assert c2.shape == (4, 4, 3, 1)
        assert c3.shape == (4, 4, 1, 3)
        assert c4.shape == (16, 4, 1, 1)

    def test_error_decreases_with_rank(self, rng):
        w = rng.standard_normal((16, 16, 3, 3)).astype(np.float32)
        errors = [tt_decompose_conv(w, rank=r).relative_error for r in (2, 4, 8, 16)]
        assert all(a >= b - 1e-7 for a, b in zip(errors, errors[1:]))

    def test_low_rank_weight_recovered_exactly(self, rng):
        """A kernel that truly has TT-rank r is reconstructed exactly with rank r."""
        i, o, k, r = 8, 12, 3, 3
        w1 = rng.standard_normal((i, r))
        w2 = rng.standard_normal((r, k, r))
        w3 = rng.standard_normal((r, k, r))
        w4 = rng.standard_normal((r, o))
        target = TTCores(w1=w1, w2=w2, w3=w3, w4=w4, ranks=(r, r, r))
        dense = tt_cores_to_dense(target)
        cores = tt_decompose_conv(dense, rank=r)
        assert cores.relative_error < 1e-4

    def test_rank_clipping(self, rng):
        w = rng.standard_normal((4, 4, 3, 3)).astype(np.float32)
        cores = tt_decompose_conv(w, rank=100)
        assert cores.ranks[0] <= 4 and cores.ranks[2] <= 4

    def test_num_parameters(self, rng):
        w = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
        cores = tt_decompose_conv(w, rank=4)
        expected = 8 * 4 + 4 * 3 * 4 + 4 * 3 * 4 + 4 * 16
        assert cores.num_parameters() == expected

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            tt_decompose_conv(np.zeros((4, 4, 3)), rank=2)
        with pytest.raises(ValueError):
            tt_decompose_conv(np.zeros((4, 4, 3, 3)), rank=0)
        with pytest.raises(ValueError):
            tt_decompose_conv(np.zeros((4, 4, 3, 3)), rank=(2, 2))

    def test_properties(self, rng):
        w = rng.standard_normal((10, 6, 3, 3)).astype(np.float32)
        cores = tt_decompose_conv(w, rank=3)
        assert cores.in_channels == 6
        assert cores.out_channels == 10
        assert cores.kernel_size == (3, 3)
