"""Tests for the STT / PTT / HTT convolution modules."""

import numpy as np
import pytest

from repro.autograd.conv import conv2d
from repro.autograd.tensor import Tensor
from repro.tt.decomposition import max_tt_ranks
from repro.tt.layers import HTTConv2d, PTTConv2d, STTConv2d, parse_htt_schedule


class TestConstruction:
    def test_sub_convolution_shapes(self):
        layer = PTTConv2d(16, 32, 3, rank=5)
        assert layer.conv1.weight.shape == (5, 16, 1, 1)
        assert layer.conv2.weight.shape == (5, 5, 3, 1)
        assert layer.conv3.weight.shape == (5, 5, 1, 3)
        assert layer.conv4.weight.shape == (32, 5, 1, 1)

    def test_parameter_count_formula(self):
        i, o, r = 16, 32, 5
        layer = STTConv2d(i, o, 3, rank=r)
        expected = r * i + 3 * r * r + 3 * r * r + o * r
        assert layer.num_parameters() == expected

    def test_rank_clipped_to_channels(self):
        layer = PTTConv2d(4, 4, 3, rank=64)
        assert max(layer.ranks) <= max(max_tt_ranks(4, 4, (3, 3)))
        assert layer.ranks[0] == layer.ranks[1] == layer.ranks[2]

    def test_rejects_invalid_rank(self):
        with pytest.raises(ValueError):
            STTConv2d(8, 8, 3, rank=0)
        with pytest.raises(ValueError):
            STTConv2d(8, 8, 3, rank=(2, 2))

    def test_rejects_non_square_kernel(self):
        with pytest.raises(ValueError):
            PTTConv2d(8, 8, (3, 5), rank=2)

    def test_rejects_bad_stride_mode(self):
        with pytest.raises(ValueError):
            PTTConv2d(8, 8, 3, rank=2, stride_mode="middle")


class TestForwardShapes:
    @pytest.mark.parametrize("cls", [STTConv2d, PTTConv2d])
    def test_output_shape_matches_dense(self, cls, rng):
        layer = cls(6, 12, 3, rank=4)
        x = Tensor(rng.standard_normal((2, 6, 10, 10)).astype(np.float32))
        assert layer(x).shape == (2, 12, 10, 10)

    @pytest.mark.parametrize("stride_mode", ["first", "last"])
    def test_strided_output_shape(self, rng, stride_mode):
        layer = PTTConv2d(6, 12, 3, rank=4, stride=2, stride_mode=stride_mode)
        x = Tensor(rng.standard_normal((1, 6, 8, 8)).astype(np.float32))
        assert layer(x).shape == (1, 12, 4, 4)

    def test_gradients_reach_all_cores(self, rng):
        layer = PTTConv2d(4, 6, 3, rank=3)
        x = Tensor(rng.standard_normal((1, 4, 6, 6)).astype(np.float32))
        layer(x).sum().backward()
        for conv in layer.sub_convolutions():
            assert conv.weight.grad is not None
            assert np.any(conv.weight.grad != 0)


class TestDenseInitialisation:
    def test_stt_from_full_rank_dense_matches_dense_conv(self, rng):
        """With full TT-ranks, the STT chain reproduces the dense convolution exactly."""
        w = rng.standard_normal((8, 6, 3, 3)).astype(np.float32)
        layer = STTConv2d(6, 8, 3, rank=max(max_tt_ranks(6, 8, (3, 3))), dense_weight=w)
        x = Tensor(rng.standard_normal((2, 6, 9, 9)).astype(np.float32))
        dense_out = conv2d(x, Tensor(w), padding=1)
        np.testing.assert_allclose(layer(x).data, dense_out.data, atol=1e-3)

    def test_truncated_init_is_approximation(self, rng):
        w = rng.standard_normal((8, 6, 3, 3)).astype(np.float32)
        layer = STTConv2d(6, 8, 3, rank=2, dense_weight=w)
        x = Tensor(rng.standard_normal((1, 6, 9, 9)).astype(np.float32))
        dense_out = conv2d(x, Tensor(w), padding=1)
        # Not exact, but correlated (the decomposition keeps the top singular directions).
        error = np.abs(layer(x).data - dense_out.data).mean()
        assert 0 < error < np.abs(dense_out.data).mean() * 2

    def test_load_dense_weight_shape_check(self, rng):
        layer = STTConv2d(6, 8, 3, rank=2)
        with pytest.raises(ValueError):
            layer.load_dense_weight(rng.standard_normal((8, 7, 3, 3)))

    def test_extract_cores_round_trip(self, rng):
        w = rng.standard_normal((8, 6, 3, 3)).astype(np.float32)
        layer = STTConv2d(6, 8, 3, rank=3, dense_weight=w)
        cores = layer.extract_cores()
        assert cores.w1.shape == (6, 3)
        assert cores.w4.shape == (3, 8)
        layer2 = STTConv2d(6, 8, 3, rank=3)
        layer2.load_cores(cores)
        x = Tensor(rng.standard_normal((1, 6, 5, 5)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, layer2(x).data, atol=1e-5)


class TestPTTSemantics:
    def test_ptt_branches_share_first_output(self, rng):
        """Eq. 5: both asymmetric kernels consume conv1's output; the sum feeds conv4."""
        layer = PTTConv2d(4, 4, 3, rank=2)
        x = Tensor(rng.standard_normal((1, 4, 6, 6)).astype(np.float32))
        shared = layer.conv1(x)
        manual = layer.conv4(layer.conv2(shared) + layer.conv3(shared))
        np.testing.assert_allclose(layer(x).data, manual.data, atol=1e-5)

    def test_ptt_differs_from_stt_wiring(self, rng):
        """The same cores wired sequentially vs in parallel give different outputs."""
        w = rng.standard_normal((8, 8, 3, 3)).astype(np.float32)
        stt = STTConv2d(8, 8, 3, rank=4, dense_weight=w)
        ptt = PTTConv2d(8, 8, 3, rank=4, dense_weight=w)
        x = Tensor(rng.standard_normal((1, 8, 7, 7)).astype(np.float32))
        assert not np.allclose(stt(x).data, ptt(x).data, atol=1e-3)


class TestHTT:
    def test_schedule_parsing(self):
        assert parse_htt_schedule("FFHH") == [False, False, True, True]
        assert parse_htt_schedule([True, False]) == [True, False]
        with pytest.raises(ValueError):
            parse_htt_schedule("FFXH")

    def test_default_schedule_half_late(self):
        layer = HTTConv2d(4, 4, 3, rank=2, timesteps=4)
        assert layer.schedule == [False, False, True, True]

    def test_schedule_length_validated(self):
        with pytest.raises(ValueError):
            HTTConv2d(4, 4, 3, rank=2, timesteps=4, schedule="FFH")

    def test_half_timesteps_use_short_path(self, rng):
        layer = HTTConv2d(4, 6, 3, rank=3, timesteps=2, schedule="FH")
        x = Tensor(rng.standard_normal((1, 4, 6, 6)).astype(np.float32))
        full_out = layer(x)                          # t=0: full PTT path
        half_out = layer(x)                          # t=1: conv1 -> conv4 only
        manual_half = layer.conv4(layer.conv1(x))
        np.testing.assert_allclose(half_out.data, manual_half.data, atol=1e-5)
        assert not np.allclose(full_out.data, half_out.data, atol=1e-4)

    def test_reset_time_restarts_schedule(self, rng):
        layer = HTTConv2d(4, 4, 3, rank=2, timesteps=2, schedule="FH")
        x = Tensor(rng.standard_normal((1, 4, 5, 5)).astype(np.float32))
        first = layer(x)
        layer(x)
        layer.reset_time()
        again = layer(x)
        np.testing.assert_allclose(first.data, again.data, atol=1e-6)

    def test_timestep_counter_saturates(self, rng):
        layer = HTTConv2d(4, 4, 3, rank=2, timesteps=2, schedule="FH")
        x = Tensor(rng.standard_normal((1, 4, 5, 5)).astype(np.float32))
        for _ in range(5):       # more calls than timesteps must not crash
            layer(x)
        assert layer.half_timestep(10) is True

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            HTTConv2d(4, 4, 3, rank=2, timesteps=0)
