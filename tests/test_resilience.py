"""Chaos suite for :mod:`repro.resilience` — seeded faults, hardened recovery.

The contract under test, end to end:

* a :class:`FaultPlan` replays the *identical* fault schedule on every run
  (and across processes), so every chaos scenario here is reproducible;
* every injected fault is survived by the subsystem it strikes — hung pool
  workers are killed/respawned and the step retried to the exact fault-free
  loss curve, corrupted checkpoints are skipped by
  ``CheckpointManager.load_latest_valid``, an injected NaN quarantines
  exactly the offending native kernel while results stay finite, fleet
  requests resolve with an answer or a typed error, transient prefetch
  errors retry while permanent ones propagate;
* nothing leaks — no orphaned worker processes, no ``/dev/shm`` segments;
* every fire is visible in :mod:`repro.obs` (the
  ``repro_faults_injected_total`` counter and ``fault.injected`` span
  events).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.data.datasets import DataLoader
from repro.data.synthetic import make_static_image_dataset
from repro.fleet import FleetServer
from repro.models.resnet import spiking_resnet18
from repro.models.vgg import spiking_vgg9
from repro.obs import configure as obs_configure
from repro.obs.metrics import default_registry
from repro.obs.trace import get_tracer
from repro.parallel import DataParallelTrainer, SharedArray, WorkerCrashError
from repro.resilience import (
    CheckpointCorruptError,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NumericFault,
    faults,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import InferenceEngine
from repro.training.checkpoint import (
    CheckpointManager,
    load_training_state,
    save_training_state,
    verify_checkpoint,
)
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

NUM_CLASSES = 4


@pytest.fixture(autouse=True)
def _clean_faults_and_tracer():
    """No plan and a disabled tracer before and after every test."""
    faults.uninstall()
    tracer = get_tracer()
    yield
    faults.uninstall()
    tracer.enabled = False
    tracer.set_exporters(())
    tracer.flight = None


def tiny_model(seed: int = 0):
    return spiking_resnet18(num_classes=NUM_CLASSES, in_channels=3, timesteps=2,
                            width_scale=0.07, norm="none",
                            rng=np.random.default_rng(seed))


def tiny_config(**overrides):
    defaults = dict(timesteps=2, epochs=1, batch_size=8, learning_rate=0.05,
                    seed=3)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture
def static_ds():
    return make_static_image_dataset(num_samples=24, num_classes=NUM_CLASSES,
                                     channels=3, height=12, width=12, seed=7)


def assert_no_segment(name: str) -> None:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    seg.close()
    raise AssertionError(f"shared-memory segment {name} still exists")


def counter_value(name: str, labels=None) -> float:
    metric = default_registry().get(name, labels)
    return metric.value if metric is not None else 0.0


class _CaptureExporter:
    def __init__(self):
        self.spans = []

    def export(self, span) -> None:
        self.spans.append(span)


# ---------------------------------------------------------------------------
# fault plan determinism


class TestFaultPlanDeterminism:
    def _drive(self, injector: FaultInjector):
        log = []
        for step in range(20):
            for rank in range(2):
                action = injector.maybe("worker.crash", rank=rank, step=step)
                if action is not None:
                    log.append(("crash", rank, step, action))
            if injector.maybe("checkpoint.corrupt", path="x") is not None:
                log.append(("corrupt", step))
        return log

    def test_same_plan_replays_identical_schedule(self):
        plan = FaultPlan(seed=11, faults=[
            FaultSpec("worker.crash", rank=1, probability=0.3, max_fires=None,
                      exitcode=9),
            FaultSpec("checkpoint.corrupt", at=(2, 5), mode="truncate"),
        ])
        first = self._drive(FaultInjector(plan))
        second = self._drive(FaultInjector(plan))
        assert first == second
        assert first  # the schedule actually fired something
        # A different seed draws a different probability stream.
        other = FaultPlan(seed=12, faults=plan.faults)
        assert self._drive(FaultInjector(other)) != first

    def test_visit_indexing_counts_matching_visits_only(self):
        plan = FaultPlan(faults=[FaultSpec("worker.hang", rank=1, at=1,
                                           seconds=5.0)])
        injector = FaultInjector(plan)
        # rank-0 visits never advance the rank-1 spec's counter.
        assert injector.maybe("worker.hang", rank=0) is None
        assert injector.maybe("worker.hang", rank=1) is None   # visit 0
        assert injector.maybe("worker.hang", rank=0) is None
        action = injector.maybe("worker.hang", rank=1)          # visit 1
        assert action == {"seconds": 5.0}
        assert injector.maybe("worker.hang", rank=1) is None    # max_fires hit

    def test_string_context_matches_by_substring(self):
        plan = FaultPlan(faults=[FaultSpec("replica.crash", replica="/r0.",
                                           at=0)])
        injector = FaultInjector(plan)
        assert injector.maybe("replica.crash", replica="m/v1/r1.0") is None
        assert injector.maybe("replica.crash", replica="m/v1/r0.0") == {}

    def test_disabled_layer_is_inactive(self):
        assert faults.get_injector() is None
        with faults.inject(FaultPlan()) as injector:
            assert faults.get_injector() is injector
            assert injector.maybe("worker.crash", rank=0) is None
        assert faults.get_injector() is None

    def test_fired_log_and_counts(self):
        with faults.inject(FaultPlan(faults=[
                FaultSpec("batcher.stall", at=(0, 1), seconds=0.0)])) as inj:
            inj.maybe("batcher.stall", model="m")
            inj.maybe("batcher.stall", model="m")
            inj.maybe("batcher.stall", model="m")
        assert inj.fire_counts() == {"batcher.stall": 2}
        assert [e["visit"] for e in inj.fired("batcher.stall")] == [0, 1]

    def test_plan_pickles(self):
        import pickle

        plan = FaultPlan(seed=5, faults=[FaultSpec("worker.crash", rank=0,
                                                   at=3, exitcode=7)])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 5
        assert clone.faults[0].site == "worker.crash"
        assert clone.faults[0].action == {"exitcode": 7}
        assert clone.sites() == ("worker.crash",)


# ---------------------------------------------------------------------------
# circuit breaker


class TestCircuitBreaker:
    def _breaker(self, **overrides):
        clock = [0.0]
        defaults = dict(window=10, min_requests=4, error_threshold=0.5,
                        open_duration_s=1.0, half_open_probes=2,
                        time_fn=lambda: clock[0])
        defaults.update(overrides)
        return CircuitBreaker(**defaults), clock

    def test_trips_open_on_error_rate(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_success()
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_probes_then_close(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] = 1.5
        assert breaker.allow()          # probe 1 admitted, now half-open
        assert breaker.allow()          # probe 2 admitted
        assert not breaker.allow()      # probe budget exhausted
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        # The window was cleared: old failures cannot re-trip it.
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        clock[0] = 1.2
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock[0] = 2.0  # the cool-down clock restarted at the re-trip
        assert breaker.state == OPEN
        clock[0] = 2.5
        assert breaker.state == HALF_OPEN

    def test_snapshot(self):
        breaker, _ = self._breaker()
        breaker.record_success()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["window"] == 2 and snap["errors"] == 1


# ---------------------------------------------------------------------------
# shared-memory atexit guard


class TestShmAtexitGuard:
    def test_leftover_owned_segment_is_unlinked(self):
        from repro.parallel import shm

        seg = SharedArray.create("guardtest", (4,))
        name = seg.name
        assert seg in shm._LIVE_OWNED
        # Simulate the coordinator dying without close(): run the guard.
        shm._unlink_leftover_segments()
        assert_no_segment(name)

    def test_unlink_removes_from_registry(self):
        from repro.parallel import shm

        seg = SharedArray.create("guardtest2", (4,))
        seg.unlink()
        assert seg not in shm._LIVE_OWNED
        assert_no_segment(seg.name)

    def test_attached_segment_never_registers(self):
        from repro.parallel import shm

        owner = SharedArray.create("guardtest3", (4,))
        attached = SharedArray.attach(owner.name, (4,))
        assert attached not in shm._LIVE_OWNED
        attached.close()
        owner.unlink()


# ---------------------------------------------------------------------------
# durable checkpoints


def _loss_curve(model, steps, data, labels, config=None, **trainer_kwargs):
    trainer = BPTTTrainer(model, config or tiny_config(), **trainer_kwargs)
    return trainer, [trainer.train_step(data, labels)["loss"]
                     for _ in range(steps)]


class TestCheckpointDurability:
    @pytest.fixture
    def batch(self, static_ds):
        return next(iter(DataLoader(static_ds, batch_size=8, shuffle=False)))

    def test_roundtrip_and_rotation(self, tmp_path, batch):
        data, labels = batch
        model = tiny_model()
        manager = CheckpointManager(str(tmp_path), keep=2)
        trainer = BPTTTrainer(model, tiny_config())
        for step in range(4):
            trainer.train_step(data, labels)
            manager.save(model, optimizer=trainer.optimizer,
                         cursor={"epoch": 0, "batch": step + 1})
        paths = manager.paths()
        assert len(paths) == 2  # keep-K pruned the two oldest
        assert all(verify_checkpoint(p) for p in paths)
        state = manager.load_latest_valid(model=tiny_model(1))
        assert state["cursor"] == {"epoch": 0, "batch": 4}
        assert state["path"] == paths[0] and state["skipped"] == []

    @pytest.mark.parametrize("mode", ["truncate", "bitflip", "partial"])
    def test_corruption_recovers_to_exact_curve(self, tmp_path, batch, mode):
        data, labels = batch
        # Reference run: 4 uninterrupted steps, checkpoint after step 2.
        ref_model = tiny_model()
        ref = BPTTTrainer(ref_model, tiny_config())
        ref_losses = [ref.train_step(data, labels)["loss"] for _ in range(2)]
        clean_dir = tmp_path / "ref"
        clean_mgr = CheckpointManager(str(clean_dir))
        clean_mgr.save(ref_model, optimizer=ref.optimizer,
                       cursor={"batch": 2})
        ref_losses += [ref.train_step(data, labels)["loss"] for _ in range(2)]

        # Faulty run: same two steps, one good save, then a save that is
        # corrupted by the injected fault — recovery must land on the good
        # save and reproduce the reference tail exactly.
        run_dir = tmp_path / "run"
        manager = CheckpointManager(str(run_dir))
        model = tiny_model()
        trainer = BPTTTrainer(model, tiny_config())
        for _ in range(2):
            trainer.train_step(data, labels)
        manager.save(model, optimizer=trainer.optimizer, cursor={"batch": 2})
        trainer.train_step(data, labels)
        with faults.inject(FaultPlan(faults=[
                FaultSpec("checkpoint.corrupt", at=0, mode=mode)])) as injector:
            manager.save(model, optimizer=trainer.optimizer,
                         cursor={"batch": 3})
        assert injector.fire_counts() == {"checkpoint.corrupt": 1}

        valid = manager.latest_valid()
        assert valid is not None
        resumed_model = tiny_model(99)  # deliberately different init
        resumed = BPTTTrainer(resumed_model, tiny_config())
        state = manager.load_latest_valid(model=resumed_model,
                                          optimizer=resumed.optimizer)
        assert state["cursor"] == {"batch": 2}
        if mode == "partial":
            # The interrupted save never produced ckpt-2; nothing to skip.
            assert state["path"].endswith("ckpt-1.ckpt")
        else:
            assert any(p.endswith("ckpt-2.ckpt") for p in state["skipped"])
        tail = [resumed.train_step(data, labels)["loss"] for _ in range(2)]
        assert tail == ref_losses[2:], (
            f"post-recovery curve diverged under {mode} corruption")

    def test_all_corrupt_returns_none(self, tmp_path, batch):
        data, labels = batch
        model = tiny_model()
        manager = CheckpointManager(str(tmp_path))
        with faults.inject(FaultPlan(faults=[
                FaultSpec("checkpoint.corrupt", at=(0, 1), mode="bitflip",
                          max_fires=None)])):
            manager.save(model)
            manager.save(model)
        assert manager.latest_valid() is None
        assert manager.load_latest_valid(model=model) is None

    def test_typed_error_on_direct_load_of_corrupt_file(self, tmp_path, batch):
        model = tiny_model()
        path = str(tmp_path / "one.ckpt")
        save_training_state(path, model)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointCorruptError):
            load_training_state(path, model=model)

    def test_legacy_bare_pickle_still_loads(self, tmp_path):
        import pickle

        model = tiny_model()
        path = str(tmp_path / "legacy.ckpt")
        reference = str(tmp_path / "framed.ckpt")
        save_training_state(reference, model)
        framed = open(reference, "rb").read()
        from repro.training.checkpoint import CHECKPOINT_MAGIC, _DIGEST_BYTES

        payload = framed[len(CHECKPOINT_MAGIC) + _DIGEST_BYTES:]
        with open(path, "wb") as handle:
            handle.write(payload)  # pre-checksum format: bare pickle
        assert verify_checkpoint(path)
        state = load_training_state(path, model=tiny_model(1))
        assert state["version"] == 1
        assert isinstance(pickle.loads(payload), dict)


# ---------------------------------------------------------------------------
# numeric guards


class TestNumericGuards:
    def _compiled_forward(self, model, backend="codegen", **kwargs):
        return model.compile(fn=model.run_timesteps, backend=backend,
                             optimize="O1", guard_numerics=True, **kwargs)

    def test_injected_nan_quarantines_offending_native_kernel(self):
        rng = np.random.default_rng(0)
        model = tiny_model()
        model.eval()
        fwd = self._compiled_forward(model)
        x = rng.standard_normal((2, 2, 3, 12, 12)).astype(np.float32)
        fwd(x)
        clean = [o.copy() for o in fwd(x)]
        before = fwd._backend_stats()
        assert before["native_nodes"] > 0
        with faults.inject(FaultPlan(faults=[FaultSpec("runtime.nan", at=0)])):
            poisoned = fwd(x)
        after = fwd._backend_stats()
        assert fwd.quarantine_count == 1
        assert after["native_nodes"] == before["native_nodes"] - 1
        assert after["fallback_nodes"] == before["fallback_nodes"] + 1
        assert after["quarantined_nodes"] == 1
        for out in poisoned:
            assert np.isfinite(out).all()
        # The quarantined node now runs the reference path; results match
        # the clean replay (the kernels are numerically equivalent).
        for a, b in zip(clean, poisoned):
            np.testing.assert_allclose(a, b, atol=1e-5)
        plans = [entry[0] for entry in fwd._plans.values()]
        # Exactly the one offending kernel is quarantined, by native label.
        assert len(plans[0].quarantined) == 1
        assert plans[0].quarantined[0].endswith("@codegen")

    def test_reference_kernel_fault_raises_typed(self):
        rng = np.random.default_rng(0)
        model = tiny_model()
        model.eval()
        fwd = self._compiled_forward(model, backend="numpy")
        x = rng.standard_normal((2, 2, 3, 12, 12)).astype(np.float32)
        fwd(x)
        fwd(x)
        with faults.inject(FaultPlan(faults=[FaultSpec("runtime.nan", at=0)])):
            with pytest.raises(NumericFault) as err:
                fwd(x)
        assert err.value.native is False
        assert err.value.position >= 0

    def test_guard_off_pays_no_guarded_path(self):
        model = tiny_model()
        model.eval()
        fwd = model.compile(fn=model.run_timesteps, optimize="O1")
        x = np.random.default_rng(0).standard_normal(
            (2, 2, 3, 12, 12)).astype(np.float32)
        fwd(x)
        plan = next(iter(fwd._plans.values()))[0]
        assert plan.guard_numerics is False

    def test_trainer_skips_nonfinite_steps_then_escalates(self, static_ds):
        data, labels = next(iter(DataLoader(static_ds, batch_size=8,
                                            shuffle=False)))
        model = tiny_model()
        trainer = BPTTTrainer(model, tiny_config(), guard_numerics=True,
                              max_skip_steps=2)
        good = trainer.train_step(data, labels)
        assert "skipped" not in good
        # Poison the classification head: the loss goes NaN from here on.
        weights = model.classifier.weight.data.copy()
        model.classifier.weight.data[:] = np.nan
        skipped = trainer.train_step(data, labels)
        assert skipped["skipped"] == 1.0 and not np.isfinite(skipped["loss"])
        assert trainer.skipped_steps == 1
        # The guard withheld the update AND zeroed the poisoned gradients.
        assert all(p.grad is None or np.allclose(p.grad, 0.0)
                   for p in model.parameters())
        # Restoring the weights resumes training and resets the streak.
        model.classifier.weight.data[:] = weights
        fine = trainer.train_step(data, labels)
        assert "skipped" not in fine and np.isfinite(fine["loss"])
        assert trainer._consecutive_skips == 0
        # A persistent fault escalates after max_skip_steps consecutive skips.
        model.classifier.weight.data[:] = np.nan
        trainer.train_step(data, labels)
        trainer.train_step(data, labels)
        with pytest.raises(NumericFault, match="consecutive"):
            trainer.train_step(data, labels)

    def test_epoch_stats_exclude_skipped_steps(self, static_ds):
        model = tiny_model()
        trainer = BPTTTrainer(model, tiny_config(), guard_numerics=True,
                              max_skip_steps=10)
        model.classifier.weight.data[:] = np.nan
        loader = DataLoader(static_ds, batch_size=8, shuffle=True,
                            seed=3)
        result = trainer.train_epoch(loader, epoch=0)
        assert trainer.skipped_steps == 3
        assert np.isnan(result.loss)  # zero counted batches
        assert result.accuracy == 0.0

    def test_engine_eager_guard_rejects_nan_logits(self):
        model = spiking_vgg9(num_classes=NUM_CLASSES, in_channels=3,
                             timesteps=2, width_scale=0.08,
                             rng=np.random.default_rng(0))
        engine = InferenceEngine(model, guard_numerics=True)
        sample = np.zeros((3, 10, 10), dtype=np.float32)
        engine.infer(sample)  # healthy model serves fine
        engine.model.classifier.bias.data[:] = np.nan
        with pytest.raises(NumericFault):
            engine.infer(sample)


# ---------------------------------------------------------------------------
# data-loader retry


class TestLoaderRetry:
    def test_transient_prefetch_error_retries_to_identical_batches(self, static_ds):
        plain = [(_d.copy(), _l.copy()) for _d, _l in
                 DataLoader(static_ds, batch_size=8, shuffle=True, seed=5)]
        loader = DataLoader(static_ds, batch_size=8, shuffle=True, seed=5,
                            prefetch=True, prefetch_retries=2,
                            prefetch_retry_backoff_s=0.001)
        with faults.inject(FaultPlan(faults=[
                FaultSpec("data.prefetch", at=(0, 3))])) as injector:
            batches = [(d.copy(), l.copy()) for d, l in loader]
        assert injector.fire_counts() == {"data.prefetch": 2}
        assert len(batches) == len(plain)
        for (da, la), (db, lb) in zip(plain, batches):
            np.testing.assert_array_equal(da, db)
            np.testing.assert_array_equal(la, lb)

    def test_exhausted_retries_propagate(self, static_ds):
        loader = DataLoader(static_ds, batch_size=8, shuffle=False,
                            prefetch=True, prefetch_retries=2,
                            prefetch_retry_backoff_s=0.001)
        # Three consecutive failures on one batch beat the 2-retry budget.
        with faults.inject(FaultPlan(faults=[
                FaultSpec("data.prefetch", at=(0, 1, 2),
                          message="disk on fire")])):
            with pytest.raises(OSError, match="disk on fire"):
                list(loader)

    def test_permanent_error_spans_still_emitted(self, static_ds):
        capture = _CaptureExporter()
        obs_configure(enabled=True, exporters=[capture], flight_capacity=None)
        loader = DataLoader(static_ds, batch_size=8, shuffle=False,
                            prefetch=True, prefetch_retries=0)
        with faults.inject(FaultPlan(faults=[FaultSpec("data.prefetch")])):
            with pytest.raises(OSError):
                list(loader)
        assert any(span.name == "data.prefetch_error" for span in capture.spans)


# ---------------------------------------------------------------------------
# batcher stall


class TestBatcherStall:
    def test_stall_delays_but_answers(self):
        batcher = MicroBatcher(lambda batch: batch.sum(axis=(1, 2, 3))[:, None],
                               max_batch_size=4, max_wait_ms=1.0, name="m")
        try:
            sample = np.ones((3, 4, 4), dtype=np.float32)
            with faults.inject(FaultPlan(faults=[
                    FaultSpec("batcher.stall", at=0, seconds=0.2)])) as injector:
                start = time.perf_counter()
                result = batcher.submit(sample).result(timeout=10.0)
                elapsed = time.perf_counter() - start
            assert elapsed >= 0.2
            assert injector.fire_counts() == {"batcher.stall": 1}
            np.testing.assert_allclose(result, [48.0])
        finally:
            batcher.close()


# ---------------------------------------------------------------------------
# pool watchdog (fork-backed)


@pytest.mark.skipif(not FORK_AVAILABLE,
                    reason="data-parallel pool needs fork start method")
class TestPoolResilience:
    def _run_epoch(self, static_ds, plan=None, timeout=4.0):
        if plan is not None:
            faults.install(plan)
        try:
            trainer = DataParallelTrainer(
                tiny_model(), tiny_config(), num_workers=2,
                train_dataset=static_ds, step_timeout_s=timeout)
            with trainer:
                trainer.train_epoch(epoch=0)
                pool = trainer._pool
                segments = pool.segment_names
                restarts = pool.worker_restarts
            return {
                "losses": list(trainer.step_loss_history),
                "retries": trainer.step_retries,
                "restarts": restarts,
                "segments": segments,
            }
        finally:
            faults.uninstall()

    def test_hung_worker_recovers_to_exact_fault_free_curve(self, static_ds):
        clean = self._run_epoch(static_ds)
        assert clean["retries"] == 0 and clean["restarts"] == 0
        plan = FaultPlan(seed=1, faults=[
            FaultSpec("worker.hang", rank=1, at=1, seconds=60.0)])
        chaos = self._run_epoch(static_ds, plan=plan, timeout=3.0)
        assert chaos["retries"] == 1
        assert chaos["restarts"] == 1
        assert chaos["losses"] == clean["losses"], (
            "recovered run must reproduce the fault-free loss curve exactly")
        for name in chaos["segments"]:
            assert_no_segment(name)
        assert not multiprocessing.active_children()

    def test_same_plan_same_recovery_twice(self, static_ds):
        plan = FaultPlan(seed=2, faults=[
            FaultSpec("worker.hang", rank=0, at=2, seconds=60.0)])
        first = self._run_epoch(static_ds, plan=plan, timeout=3.0)
        second = self._run_epoch(static_ds, plan=plan, timeout=3.0)
        assert first["losses"] == second["losses"]
        assert first["retries"] == second["retries"] == 1
        assert first["restarts"] == second["restarts"] == 1

    def test_injected_crash_surfaces_typed_and_cleans_up(self, static_ds):
        faults.install(FaultPlan(faults=[
            FaultSpec("worker.crash", rank=1, at=0, exitcode=23)]))
        try:
            trainer = DataParallelTrainer(
                tiny_model(), tiny_config(), num_workers=2,
                train_dataset=static_ds, step_timeout_s=4.0)
            data, labels = next(iter(DataLoader(static_ds, batch_size=8,
                                                shuffle=False)))
            trainer._ensure_pool()
            segments = trainer._pool.segment_names
            with pytest.raises(WorkerCrashError, match="worker 1"):
                trainer.train_step(data, labels)
            for name in segments:
                assert_no_segment(name)
        finally:
            faults.uninstall()
        assert not multiprocessing.active_children()

    def test_fault_metrics_exported(self, static_ds):
        base = counter_value("repro_pool_worker_restarts_total")
        plan = FaultPlan(seed=1, faults=[
            FaultSpec("worker.hang", rank=1, at=1, seconds=60.0)])
        self._run_epoch(static_ds, plan=plan, timeout=3.0)
        assert counter_value("repro_pool_worker_restarts_total") == base + 1
        assert counter_value("repro_train_step_retries_total") >= 1


# ---------------------------------------------------------------------------
# fleet chaos


def _fleet_model(seed: int = 0):
    return spiking_vgg9(num_classes=NUM_CLASSES, in_channels=3, timesteps=2,
                        width_scale=0.08, rng=np.random.default_rng(seed))


class TestFleetChaos:
    def test_seeded_burst_every_request_resolves(self):
        plan = FaultPlan(seed=4, faults=[
            FaultSpec("replica.crash", replica="/r0.0", at=2),
            FaultSpec("replica.slow", replica="/r1.", at=(1, 4),
                      seconds=0.02, max_fires=2),
        ])
        faults.install(plan)
        server = FleetServer(replicas=2, max_batch_size=4, max_wait_ms=1.0,
                             restart_backoff_s=0.05, restart_backoff_cap_s=0.2)
        try:
            server.register("m", _fleet_model(),
                            warmup_sample=np.zeros((3, 10, 10),
                                                   dtype=np.float32))
            rng = np.random.default_rng(0)
            futures = [server.submit(
                "m", rng.standard_normal((3, 10, 10)).astype(np.float32))
                for _ in range(24)]
            resolved = 0
            for future in futures:
                try:
                    logits = future.result(timeout=30.0)
                    assert logits.shape == (NUM_CLASSES,)
                    assert np.isfinite(logits).all()
                    resolved += 1
                except Exception as exc:  # noqa: BLE001 - typed check below
                    from repro.fleet.errors import FleetError
                    from repro.serve.batcher import BatcherClosed

                    assert isinstance(exc, (FleetError, BatcherClosed)), (
                        f"untyped failure leaked to a client: {exc!r}")
            assert resolved >= 20  # the crash strands at most a few
            injector = faults.get_injector()
            assert injector.fire_counts().get("replica.crash") == 1
            # The supervisor replaces the crashed replica.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status = server.replica_status("m")
                if all(row["alive"] for row in status) and any(
                        row["restarts"] >= 1 for row in status):
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"replica never restarted: {status}")
            report = server.health_report("m")
            assert report["ready"] is True
            assert {row["slot"] for row in report["replicas"]} == {0, 1}
            assert all(row["breaker"] is not None
                       for row in report["replicas"])
        finally:
            server.close()
            faults.uninstall()

    def test_breaker_feeds_router_and_health_report(self):
        server = FleetServer(replicas=2, max_batch_size=4, max_wait_ms=1.0,
                             breaker_window=4, breaker_min_requests=2,
                             breaker_error_threshold=0.5, breaker_open_s=30.0)
        try:
            server.register("m", _fleet_model(),
                            warmup_sample=np.zeros((3, 10, 10),
                                                   dtype=np.float32))
            entry = server._entry("m")
            slot0 = entry.group.slots[0]
            # Force slot 0's breaker open directly (unit-style: the breaker
            # transition logic is covered above; this asserts the *router*
            # respects it).
            for _ in range(4):
                slot0.replica.breaker.record_failure()
            assert slot0.replica.breaker.state == OPEN
            report = server.health_report("m")
            rows = {row["slot"]: row for row in report["replicas"]}
            assert rows[0]["alive"] and not rows[0]["routable"]
            assert rows[1]["routable"]
            assert report["ready"] is True  # slot 1 carries the model
            sample = np.zeros((3, 10, 10), dtype=np.float32)
            before = slot0.replica.outstanding
            for _ in range(6):
                server.infer("m", sample, timeout=30.0)
            # All traffic routed around the open breaker.
            assert slot0.replica.outstanding == before
            status = server.replica_status("m")
            assert status[0]["breaker"] == OPEN
            assert status[1]["breaker"] == CLOSED
        finally:
            server.close()

    def test_all_breakers_open_still_serves(self):
        server = FleetServer(replicas=2, max_batch_size=4, max_wait_ms=1.0,
                             breaker_open_s=30.0)
        try:
            server.register("m", _fleet_model(),
                            warmup_sample=np.zeros((3, 10, 10),
                                                   dtype=np.float32))
            entry = server._entry("m")
            for slot in entry.group.slots:
                for _ in range(5):
                    slot.replica.breaker.record_failure()
                assert slot.replica.breaker.state == OPEN
            assert server.health_report("m")["ready"] is False
            # Availability beats purity: the router falls back to the alive
            # (if tripped) replicas rather than failing the request.
            logits = server.infer("m", np.zeros((3, 10, 10), dtype=np.float32),
                                  timeout=30.0)
            assert logits.shape == (NUM_CLASSES,)
        finally:
            server.close()

    def test_sustained_health_resets_restart_budget(self):
        faults.install(FaultPlan(faults=[
            FaultSpec("replica.crash", replica="/r0.0", at=0)]))
        server = FleetServer(replicas=2, max_batch_size=4, max_wait_ms=1.0,
                             restart_backoff_s=0.05, restart_backoff_cap_s=0.2,
                             restart_reset_s=0.3)
        try:
            server.register("m", _fleet_model())
            sample = np.zeros((3, 10, 10), dtype=np.float32)
            server.infer("m", sample, timeout=30.0)  # trips the r0 crash
            faults.uninstall()
            deadline = time.monotonic() + 10.0
            saw_restart = False
            while time.monotonic() < deadline:
                status = server.replica_status("m")
                restarts = [row["restarts"] for row in status]
                saw_restart = saw_restart or any(r >= 1 for r in restarts)
                if saw_restart and all(r == 0 for r in restarts) and all(
                        row["alive"] for row in status):
                    break
                server.infer("m", sample, timeout=30.0)
                time.sleep(0.05)
            else:
                pytest.fail(f"restart budget never reset: {status}")
        finally:
            server.close()
            faults.uninstall()


# ---------------------------------------------------------------------------
# observability of injected faults


class TestFaultObservability:
    def test_fires_count_in_metrics_registry(self):
        base = counter_value("repro_faults_injected_total",
                             {"site": "batcher.stall"})
        with faults.inject(FaultPlan(faults=[
                FaultSpec("batcher.stall", at=0, seconds=0.0)])) as injector:
            injector.maybe("batcher.stall", model="m")
        assert counter_value("repro_faults_injected_total",
                             {"site": "batcher.stall"}) == base + 1

    def test_fires_emit_span_events(self):
        capture = _CaptureExporter()
        tracer = obs_configure(enabled=True, exporters=[capture],
                               flight_capacity=None)
        with faults.inject(FaultPlan(faults=[
                FaultSpec("replica.slow", at=0, seconds=0.0)])) as injector:
            with tracer.span("serve.request"):
                injector.maybe("replica.slow", replica="m/v1/r0.0")
        events = [(name, attrs) for span in capture.spans
                  for _, name, attrs in span.events]
        fault_events = [attrs for name, attrs in events
                        if name == "fault.injected"]
        assert fault_events == [{"site": "replica.slow",
                                 "replica": "m/v1/r0.0"}]
