"""Tests for the plan-time graph optimizer (:mod:`repro.runtime.optimizer`).

Guarantees under test:

* **O1 is training-safe**: compiled O1 train steps match eager/O0 training
  bit-for-bit over several optimizer steps (losses, logits, gradients,
  parameters) — the O1 passes are value-exact by construction.
* **O2 folds are inference-exact to tolerance**: eval-BN folding stays
  within 1e-6 of the O0 replay, TT pre-contraction within the same 1e-5
  bound the model-level Eq. 6 merge satisfies (``test_merge_equivalence``).
* **Structure**: folds remove the nodes they claim to remove; fusion,
  CSE/DCE and view collapse shrink the graph; invalid folds (stride-first
  TT layers) fall back to the partial tail fold.
* **Runtime integration**: zero steady-state arena allocations, re-capture
  on shape change, parallel no-grad replay equivalence, per-kernel
  profiling, optimizer reports in ``runtime_stats``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.models.builder import convert_to_tt
from repro.models.resnet import spiking_resnet18
from repro.models.vgg import spiking_vgg9
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, Sequential
from repro.runtime import CompiledForward, CompiledTrainStep, OPT_LEVELS
from repro.runtime.replay import _CompiledBase
from repro.serve.engine import InferenceEngine
from repro.snn.encoding import encode_batch
from repro.snn.loss import mean_output_cross_entropy
from repro.training.config import TrainingConfig
from repro.training.trainer import BPTTTrainer
from repro.tt.layers import HTTConv2d, PTTConv2d, STTConv2d

TIMESTEPS = 2
NUM_CLASSES = 4
ATOL = 1e-6
MERGE_ATOL = 1e-5          # same bound as tests/test_merge_equivalence.py


def _make_model(arch: str, variant: str, seed: int = 0):
    rng = np.random.default_rng(seed)
    if arch == "vgg9":
        model = spiking_vgg9(num_classes=NUM_CLASSES, in_channels=3,
                             timesteps=TIMESTEPS, width_scale=0.1, rng=rng)
    else:
        model = spiking_resnet18(num_classes=NUM_CLASSES, in_channels=3,
                                 timesteps=TIMESTEPS, width_scale=0.07, rng=rng)
    convert_to_tt(model, variant=variant, rank=4, timesteps=TIMESTEPS)
    return model


def _make_pair(arch: str, variant: str):
    eager = _make_model(arch, variant)
    other = _make_model(arch, variant)
    other.load_state_dict(eager.state_dict())
    return eager, other


def _batches(steps: int = 3, n: int = 2, size: int = 8, seed: int = 7):
    rng = np.random.default_rng(seed)
    return [(rng.random((n, 3, size, size)).astype(np.float32),
             rng.integers(0, NUM_CLASSES, n)) for _ in range(steps)]


def _warm_stats(model, steps: int = 2):
    """A couple of eager train steps so BN running stats are non-trivial."""
    trainer = BPTTTrainer(model, TrainingConfig(timesteps=TIMESTEPS, batch_size=2,
                                                learning_rate=0.05))
    for data, labels in _batches(steps, seed=11):
        trainer.train_step(data, labels)


def _op_histogram(compiled) -> dict:
    plan = next(iter(compiled._plans.values()))[0]
    counts: dict = {}
    for node in plan.nodes:
        key = node.op
        if node.op in ("fn", "fn_cached"):
            key = f"{node.op}:{node.attrs['cls'].__name__}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def _report(compiled) -> dict:
    return compiled.runtime_stats()["optimizer"]


# ---------------------------------------------------------------------------
# O1: training equivalence (gradients included)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arch", ["vgg9", "resnet18"])
@pytest.mark.parametrize("variant", ["ptt", "htt"])
def test_o1_train_step_matches_o0_with_grads(arch, variant):
    """O1-compiled training tracks O0 to <= 1e-6 over K steps incl. SGD."""
    base, optimized = _make_pair(arch, variant)
    config = TrainingConfig(timesteps=TIMESTEPS, batch_size=2, learning_rate=0.05)
    trainer_o0 = BPTTTrainer(base, config, compile=True, optimize="O0")
    trainer_o1 = BPTTTrainer(optimized, config, compile=True, optimize="O1")
    for step, (data, labels) in enumerate(_batches(steps=4)):
        s0 = trainer_o0.train_step(data, labels)
        s1 = trainer_o1.train_step(data, labels)
        assert abs(s0["loss"] - s1["loss"]) <= ATOL, f"step {step}"
    for (name, p0), (_, p1) in zip(base.named_parameters(), optimized.named_parameters()):
        np.testing.assert_allclose(p0.grad, p1.grad, atol=ATOL, err_msg=f"grad {name}")
        np.testing.assert_allclose(p0.data, p1.data, atol=ATOL, err_msg=f"param {name}")
    report = _report(trainer_o1._compiled)
    assert report["level"] == "O1"
    assert report["nodes_after"] < report["nodes_before"]
    assert report["specialized"] > 0


def test_o1_train_matches_pure_eager(mode="fused"):
    """O1 also matches the *eager* engine (not just the O0 replay)."""
    eager, optimized = _make_pair("vgg9", "ptt")
    step = CompiledTrainStep(optimized, mean_output_cross_entropy, optimize="O1")
    for data, labels in _batches(steps=3):
        batch = encode_batch(data, TIMESTEPS)
        eager.zero_grad()
        outputs = eager.run_timesteps(batch, step_mode=mode)
        mean_output_cross_entropy(outputs, labels).backward()
        optimized.zero_grad()
        loss, logits, _ = step.run(batch, labels)
        for got, want in zip(logits, outputs):
            np.testing.assert_allclose(got, want.data, atol=ATOL)
    for (name, p0), (_, p1) in zip(eager.named_parameters(), optimized.named_parameters()):
        np.testing.assert_allclose(p0.grad, p1.grad, atol=ATOL, err_msg=f"grad {name}")


def test_o2_training_plan_degrades_to_o1():
    """O2 on a training capture applies only the training-safe passes."""
    base, optimized = _make_pair("vgg9", "ptt")
    config = TrainingConfig(timesteps=TIMESTEPS, batch_size=2, learning_rate=0.05)
    trainer_o0 = BPTTTrainer(base, config, compile=True, optimize="O0")
    trainer_o2 = BPTTTrainer(optimized, config, compile=True, optimize="O2")
    for data, labels in _batches(steps=3):
        s0 = trainer_o0.train_step(data, labels)
        s2 = trainer_o2.train_step(data, labels)
        assert abs(s0["loss"] - s2["loss"]) <= ATOL
    report = _report(trainer_o2._compiled)
    assert report["folded_bn"] == 0 and report["folded_tt"] == 0
    for (name, p0), (_, p2) in zip(base.named_parameters(), optimized.named_parameters()):
        np.testing.assert_allclose(p0.grad, p2.grad, atol=ATOL, err_msg=name)


# ---------------------------------------------------------------------------
# O2: serving equivalence and constant folding
# ---------------------------------------------------------------------------


def test_o2_serve_replays_match_o0_and_eager():
    model = _make_model("vgg9", "ptt")
    _warm_stats(model)
    eager_engine = InferenceEngine(model)
    engine_o0 = InferenceEngine(model, compile=True, optimize="O0")
    engine_o2 = InferenceEngine(model, compile=True, optimize="O2")
    rng = np.random.default_rng(5)
    for call in range(4):
        x = rng.random((2, 3, 8, 8)).astype(np.float32)
        logits_eager = eager_engine.infer(x)
        logits_o0 = engine_o0.infer(x)
        logits_o2 = engine_o2.infer(x)
        # call 0 captures (eager under the trace); later calls replay the
        # optimized plan — the interesting comparison.
        np.testing.assert_allclose(logits_o2, logits_o0, atol=ATOL,
                                   err_msg=f"call {call}")
        np.testing.assert_allclose(logits_o2, logits_eager, atol=MERGE_ATOL)
    report = _report(engine_o2._compiled)
    assert report["folded_bn"] > 0
    hist = _op_histogram(engine_o2._compiled)
    assert not any(key.startswith("bn_seq") for key in hist), hist


def test_eval_bn_folds_into_conv_module():
    rng = np.random.default_rng(2)
    module = Sequential(Conv2d(3, 6, kernel_size=3, padding=1, rng=rng),
                        BatchNorm2d(6))
    # Non-trivial statistics and affine parameters.
    module[1].running_mean.data[...] = rng.standard_normal(6).astype(np.float32)
    module[1].running_var.data[...] = (0.5 + rng.random(6)).astype(np.float32)
    module[1].weight.data[...] = (1 + 0.3 * rng.standard_normal(6)).astype(np.float32)
    module[1].bias.data[...] = rng.standard_normal(6).astype(np.float32)
    module.eval()

    def fn(t):
        # Sequence layout so the fused bn_seq node is captured.
        folded = module[0].forward_sequence(t)
        return module[1].forward_sequence(folded)

    x = rng.random((TIMESTEPS, 2, 8, 8, 3)).astype(np.float32)
    compiled = CompiledForward(fn, optimize="O2")
    compiled(x)                      # capture
    out = compiled(x)                # folded replay
    with no_grad():
        want = fn(Tensor(x)).data
    np.testing.assert_allclose(out, want, atol=ATOL)
    assert _report(compiled)["folded_bn"] == 1
    assert not any(key.startswith("bn_seq") for key in _op_histogram(compiled))


@pytest.mark.parametrize("cls", [STTConv2d, PTTConv2d])
def test_tt_layer_folds_to_single_conv(cls):
    rng = np.random.default_rng(3)
    layer = cls(6, 10, kernel_size=3, rank=3, rng=rng)
    layer.eval()
    compiled = layer.compile(optimize="O2")
    x = rng.standard_normal((4, 6, 9, 9)).astype(np.float32)
    compiled(x)
    out = compiled(x)
    with no_grad():
        want = layer(Tensor(x)).data
    np.testing.assert_allclose(out, want, atol=MERGE_ATOL)
    assert _report(compiled)["folded_tt"] == 1
    hist = _op_histogram(compiled)
    assert hist.get("fn_cached:Conv2dFunction") == 1     # four convs became one


def test_tt_fold_strided_last_is_exact_and_strided_first_folds_tail():
    rng = np.random.default_rng(4)
    x = rng.standard_normal((3, 6, 8, 8)).astype(np.float32)
    # stride on the last 1x1: full fold, exact merge semantics.
    last = PTTConv2d(6, 8, kernel_size=3, rank=3, stride=2, stride_mode="last", rng=rng)
    last.eval()
    compiled = last.compile(optimize="O2")
    compiled(x)
    out = compiled(x)
    with no_grad():
        want = last(Tensor(x)).data
    np.testing.assert_allclose(out, want, atol=MERGE_ATOL)
    assert _report(compiled)["folded_tt"] == 1
    assert _op_histogram(compiled).get("fn_cached:Conv2dFunction") == 1

    # stride on the first 1x1: the full merge is inexact, so only the
    # (exact) conv2/conv3/conv4 tail is folded — two convolutions remain.
    first = PTTConv2d(6, 8, kernel_size=3, rank=3, stride=2, stride_mode="first", rng=rng)
    first.eval()
    compiled = first.compile(optimize="O2")
    compiled(x)
    out = compiled(x)
    with no_grad():
        want = first(Tensor(x)).data
    np.testing.assert_allclose(out, want, atol=MERGE_ATOL)
    assert _op_histogram(compiled).get("fn_cached:Conv2dFunction") == 2


def test_htt_sequence_folds_full_tail_and_half_path():
    rng = np.random.default_rng(5)
    layer = HTTConv2d(6, 8, kernel_size=3, rank=3, timesteps=4, schedule="FFHH", rng=rng)
    layer.eval()

    def fn(t):
        layer.reset_time()
        return layer.forward_sequence(t)

    x = rng.standard_normal((4, 2, 7, 7, 6)).astype(np.float32)
    compiled = CompiledForward(fn, optimize="O2")
    compiled(x)
    out = compiled(x)
    layer.reset_time()
    with no_grad():
        want = fn(Tensor(x)).data
    np.testing.assert_allclose(out, want, atol=MERGE_ATOL)
    assert _report(compiled)["folded_tt"] >= 1        # the full-branch tail


def test_pad2d_folds_into_conv_with_grads():
    rng = np.random.default_rng(6)
    conv = Conv2d(3, 5, kernel_size=3, padding=0, rng=rng)
    linear = Linear(5 * 8 * 8, NUM_CLASSES, rng=rng)

    def forward(t):
        padded = F.pad2d(t, (1, 1))
        out = conv(padded)
        return linear(out.reshape(out.shape[0], -1))

    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    # No-grad folding:
    compiled = CompiledForward(forward, optimize="O1")
    compiled(x)
    out = compiled(x)
    with no_grad():
        want = forward(Tensor(x)).data
    np.testing.assert_allclose(out, want, atol=ATOL)
    assert _report(compiled)["folded_pads"] == 1
    assert "pad2d" not in _op_histogram(compiled)


# ---------------------------------------------------------------------------
# fusion / CSE / DCE / view collapse
# ---------------------------------------------------------------------------


def test_elementwise_chain_fusion_forward_and_backward():
    rng = np.random.default_rng(7)
    weight = Tensor(rng.standard_normal((4, 4)).astype(np.float32), requires_grad=True)

    def chain(t):
        return ((t @ weight).tanh() * 2.0 + 0.5).exp().log()

    x = rng.standard_normal((3, 4)).astype(np.float32)
    compiled = CompiledForward(lambda t: chain(t), optimize="O1")
    compiled(x)
    out = compiled(x)
    with no_grad():
        want = chain(Tensor(x)).data
    np.testing.assert_allclose(out, want, atol=ATOL)
    report = _report(compiled)
    assert report["fused_chains"] >= 1 and report["fused_ops"] >= 3
    assert "ew_chain" in _op_histogram(compiled)


def test_fused_chain_gradients_match_eager():
    class ChainModel:
        """Minimal duck-typed model for CompiledTrainStep."""

        def __init__(self, seed=8):
            rng = np.random.default_rng(seed)
            self.weight = Tensor(rng.standard_normal((6, NUM_CLASSES)).astype(np.float32) * 0.3,
                                 requires_grad=True)
            self.training = True
            self.timesteps = 1
            self.step_mode = "fused"

        def parameters(self):
            return [self.weight]

        def run_timesteps(self, batch, step_mode=None):
            flat = batch.reshape(batch.shape[0] * batch.shape[1], -1)
            logits = (flat @ self.weight).tanh() * 1.5 + 0.1
            return [logits]

    eager_model = ChainModel()
    compiled_model = ChainModel()
    compiled_model.weight.data[...] = eager_model.weight.data
    step = CompiledTrainStep(compiled_model, mean_output_cross_entropy, optimize="O1")
    rng = np.random.default_rng(9)
    for _ in range(3):
        batch = rng.random((1, 3, 6)).astype(np.float32)
        labels = rng.integers(0, NUM_CLASSES, 3)
        eager_model.weight.zero_grad()
        outputs = eager_model.run_timesteps(Tensor(batch))
        mean_output_cross_entropy(outputs, labels).backward()
        compiled_model.weight.zero_grad()
        loss, _, _ = step.run(batch, labels)
        np.testing.assert_allclose(compiled_model.weight.grad, eager_model.weight.grad,
                                   atol=ATOL)
    assert _report(step)["fused_chains"] >= 1


def test_view_chain_collapse_and_cse_and_dce():
    rng = np.random.default_rng(10)
    linear = Linear(6, 6, rng=rng)

    def fn(t):
        # reshape∘reshape∘reshape collapses; the two identical reshape
        # nodes CSE; the dead branch (unused tanh) is eliminated.
        a = t.reshape(3, 2, 6).reshape(6, 6).reshape(2, 3, 6).reshape(6, 6)
        a.tanh()                       # dead
        b = t.reshape(3, 2, 6).reshape(6, 6)
        return linear(a + b)

    x = rng.standard_normal((6, 6)).astype(np.float32)
    baseline = CompiledForward(fn, optimize="O0")
    compiled = CompiledForward(fn, optimize="O1")
    baseline(x), compiled(x)
    np.testing.assert_allclose(compiled(x), baseline(x), atol=ATOL)
    report = _report(compiled)
    assert report["views_collapsed"] >= 2
    assert report["cse_removed"] >= 1
    assert report["dce_removed"] >= 1
    plan_o0 = next(iter(baseline._plans.values()))[0]
    plan_o1 = next(iter(compiled._plans.values()))[0]
    assert len(plan_o1.nodes) < len(plan_o0.nodes)


def test_lif_reshape_sandwich_removed():
    model = _make_model("vgg9", "ptt")
    model.eval()
    compiled = model.compile(fn=lambda t: model.run_timesteps(t, step_mode="fused"),
                             optimize="O1")
    rng = np.random.default_rng(11)
    batch = rng.random((TIMESTEPS, 2, 3, 8, 8)).astype(np.float32)
    compiled(batch)
    outs = compiled(batch)
    with no_grad():
        want = model.run_timesteps(batch, step_mode="fused")
    for got, expect in zip(outs, want):
        np.testing.assert_allclose(got, expect.data, atol=ATOL)
    # Each of the LIF layers lost its fold/unfold reshape pair.
    assert _report(compiled)["views_collapsed"] >= 2


# ---------------------------------------------------------------------------
# schedule optimization / parallel replay
# ---------------------------------------------------------------------------


def test_memory_reorder_never_increases_peak():
    model = _make_model("resnet18", "ptt")
    model.eval()
    compiled = model.compile(fn=lambda t: model.run_timesteps(t, step_mode="fused"),
                             optimize="O2")
    rng = np.random.default_rng(12)
    batch = rng.random((TIMESTEPS, 2, 3, 8, 8)).astype(np.float32)
    compiled(batch)
    report = _report(compiled)
    assert report["peak_bytes_before"] > 0
    assert report["peak_bytes_after"] <= report["peak_bytes_before"]


def test_parallel_replay_matches_sequential():
    model = _make_model("resnet18", "ptt")
    _warm_stats(model)
    sequential = InferenceEngine(model, merge=False, compile=True, optimize="O2")
    parallel = InferenceEngine(model, merge=False, compile=True, optimize="O2",
                               parallel_replay=2)
    rng = np.random.default_rng(13)
    for _ in range(3):
        x = rng.random((2, 3, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(parallel.infer(x), sequential.infer(x), atol=ATOL)
    stats = parallel._compiled.runtime_stats()
    assert stats["plan"]["parallel_levels"] > 1
    assert stats["plan"]["parallel_workers"] == 2
    assert _report(parallel._compiled)["parallel_levels"] > 1


# ---------------------------------------------------------------------------
# runtime integration: arena, recapture, stats, profiling
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("optimize", ["O1", "O2"])
def test_optimized_plans_keep_zero_steady_state_allocations(optimize):
    _, model = _make_pair("vgg9", "ptt")
    trainer = BPTTTrainer(model, TrainingConfig(timesteps=TIMESTEPS, batch_size=2),
                          compile=True, optimize=optimize)
    batches = _batches(steps=6)
    for data, labels in batches[:3]:
        trainer.train_step(data, labels)
    arena = trainer._compiled.arena
    allocated = arena.allocated
    for data, labels in batches[3:]:
        trainer.train_step(data, labels)
    assert arena.allocated == allocated
    assert arena.stats()["bytes_high_water"] > 0


def test_shape_change_recaptures_optimized_plans():
    model = _make_model("vgg9", "ptt")
    model.eval()
    compiled = model.compile(fn=lambda t: model.run_timesteps(t, step_mode="fused"),
                             optimize="O2")
    rng = np.random.default_rng(14)
    for n in (1, 2, 1):
        batch = rng.random((TIMESTEPS, n, 3, 8, 8)).astype(np.float32)
        outs = compiled(batch)
        with no_grad():
            want = model.run_timesteps(batch, step_mode="fused")
        for got, expect in zip(outs, want):
            np.testing.assert_allclose(got, expect.data, atol=ATOL)
    assert compiled.capture_count == 2
    assert compiled.replay_count == 1


def test_runtime_stats_carry_optimizer_report_and_kernels():
    _, model = _make_pair("vgg9", "ptt")
    trainer = BPTTTrainer(model, TrainingConfig(timesteps=TIMESTEPS, batch_size=2),
                          compile=True, optimize="O1", profile=True)
    for data, labels in _batches(steps=3):
        trainer.train_step(data, labels)
    from repro.metrics.profiler import summarize_runtime

    report = summarize_runtime(trainer._compiled, top_k=5)
    assert report["optimize"] == "O1"
    assert report["optimizer"]["level"] == "O1"
    hot = report["hot_ops"]
    assert 0 < len(hot) <= 5
    assert all({"op", "seconds", "calls", "share"} <= set(entry) for entry in hot)
    assert hot[0]["seconds"] >= hot[-1]["seconds"]
    # Both forward and backward kernels are attributed.
    all_kernels = report["kernels"]
    assert any(label.startswith("bwd:") for label in all_kernels)


def test_invalid_optimize_level_rejected():
    model = _make_model("vgg9", "ptt")
    with pytest.raises(ValueError, match="optimize"):
        CompiledTrainStep(model, mean_output_cross_entropy, optimize="O3")
    with pytest.raises(ValueError, match="optimize"):
        model.compile(optimize="fast")
    assert OPT_LEVELS == ("O0", "O1", "O2")
    assert isinstance(CompiledForward(lambda t: t, optimize="O2"), _CompiledBase)


def test_adopted_engine_defaults_to_live_parameter_plans():
    """An engine built with ``copy_model=False`` serves the *caller's* model,
    which may keep training — so the compiled default drops to O1 (live
    parameter reads) and weight updates reach already-captured plans."""
    model = _make_model("vgg9", "ptt")
    model_copy = _make_model("vgg9", "ptt")
    model_copy.load_state_dict(model.state_dict())
    engine = InferenceEngine(model, merge=False, copy_model=False, compile=True)
    assert engine._compiled.optimize == "O1"
    owned = InferenceEngine(model_copy, merge=False, compile=True)
    assert owned._compiled.optimize == "O2"
    x = np.random.default_rng(17).random((2, 3, 8, 8)).astype(np.float32)
    engine.infer(x)
    engine.infer(x)                       # replay with original weights
    for param in model.parameters():
        param.data += 0.05                # "training" continues on the adoptee
    with no_grad():
        want = InferenceEngine(model, merge=False, copy_model=False).infer(x)
    np.testing.assert_allclose(engine.infer(x), want, atol=ATOL)


def test_cached_views_track_in_place_input_mutation():
    """Regression: a reshape that copies (non-viewable layout) must never be
    cached by identity — the serving engine reuses one pad buffer per shape
    and rewrites it in place between replays, which would silently freeze
    the copy's first-replay contents."""
    def fn(t):
        return (t.transpose(1, 0, 2).reshape(6, 4) * 2.0).tanh()

    compiled = CompiledForward(fn, optimize="O2")
    buffer = np.random.default_rng(16).random((4, 6, 1)).astype(np.float32)
    for _ in range(4):                        # capture + replays, same object
        buffer[...] = np.random.default_rng(int(buffer.sum() * 1e4) % 1000) \
            .random(buffer.shape).astype(np.float32)
        out = compiled(buffer)
        with no_grad():
            want = fn(Tensor(buffer.copy())).data
        np.testing.assert_allclose(out, want, atol=ATOL)


def test_invalidate_releases_optimized_plans_and_recaptures():
    rng = np.random.default_rng(15)
    module = Sequential(Linear(5, 8, rng=rng), Linear(8, 3, rng=rng))
    module.eval()
    compiled = module.compile(optimize="O1")
    x = rng.standard_normal((3, 5)).astype(np.float32)
    compiled(x)
    compiled(x)
    compiled.invalidate()
    assert compiled.plan_count == 0
    np.testing.assert_allclose(compiled(x), module(Tensor(x)).data, atol=ATOL)
