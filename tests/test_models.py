"""Tests for the spiking model zoo, TT model surgery and the analytical layer specs."""

import numpy as np
import pytest

from repro.metrics.params import count_parameters
from repro.models.builder import convert_to_tt, count_tt_layers, decomposable_convolutions
from repro.models.resnet import spiking_resnet18, spiking_resnet20, spiking_resnet34
from repro.models.specs import (
    model_layer_specs,
    resnet18_layer_specs,
    resnet34_layer_specs,
    vgg_layer_specs,
)
from repro.models.vgg import VGG9_CONFIG, spiking_vgg9, spiking_vgg11
from repro.tt.layers import HTTConv2d, PTTConv2d, STTConv2d


RNG = np.random.default_rng(0)


class TestResNets:
    def test_resnet18_forward_shapes(self, rng):
        model = spiking_resnet18(num_classes=5, timesteps=2, width_scale=0.07, rng=RNG)
        inputs = rng.random((2, 3, 3, 16, 16)).astype(np.float32)
        outputs = model.run_timesteps(inputs)
        assert len(outputs) == 2
        assert outputs[0].shape == (3, 5)

    def test_resnet18_has_16_decomposable_convs(self):
        model = spiking_resnet18(width_scale=0.07)
        assert len(model.decomposable_layer_names()) == 16

    def test_resnet34_has_32_decomposable_convs(self):
        model = spiking_resnet34(width_scale=0.07)
        assert len(model.decomposable_layer_names()) == 32

    def test_resnet20_three_stages(self):
        model = spiking_resnet20(width_scale=0.5)
        assert len(model.decomposable_layer_names()) == 18
        assert len(model.stages) == 3

    def test_stem_excluded_from_decomposition(self):
        model = spiking_resnet18(width_scale=0.07)
        assert "stem_conv" not in model.decomposable_layer_names()

    def test_full_width_resnet18_parameter_count_matches_paper(self):
        """At width_scale=1 the dense ResNet-18 must hold ~11.2M parameters (Table II)."""
        model = spiking_resnet18(num_classes=10, width_scale=1.0)
        params = count_parameters(model)
        assert params == pytest.approx(11.2e6, rel=0.02)

    def test_event_input_channels(self, rng):
        model = spiking_resnet34(num_classes=6, in_channels=2, timesteps=2, width_scale=0.05,
                                 rng=RNG)
        inputs = rng.random((2, 2, 2, 16, 16)).astype(np.float32)
        outputs = model.run_timesteps(inputs)
        assert outputs[0].shape == (2, 6)

    def test_predict_returns_labels(self, rng):
        model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07, rng=RNG)
        inputs = rng.random((2, 2, 3, 12, 12)).astype(np.float32)
        predictions = model.predict(inputs)
        assert predictions.shape == (2,)
        assert np.all((predictions >= 0) & (predictions < 4))

    def test_run_timesteps_validates_input(self, rng):
        model = spiking_resnet18(num_classes=4, timesteps=4, width_scale=0.07)
        with pytest.raises(ValueError):
            model.run_timesteps(rng.random((2, 3, 12, 12)))       # missing time axis
        with pytest.raises(ValueError):
            model.run_timesteps(rng.random((2, 2, 3, 12, 12)))    # too few timesteps


class TestVGG:
    def test_vgg9_forward(self, rng):
        model = spiking_vgg9(num_classes=5, timesteps=2, width_scale=0.1, rng=RNG)
        inputs = rng.random((2, 2, 3, 16, 16)).astype(np.float32)
        assert model.run_timesteps(inputs)[0].shape == (2, 5)

    def test_vgg_stem_excluded(self):
        model = spiking_vgg9(width_scale=0.1)
        names = model.decomposable_layer_names()
        expected_convs = sum(1 for entry in VGG9_CONFIG if entry != "M")
        assert len(names) == expected_convs - 1

    def test_vgg11_event_input(self, rng):
        model = spiking_vgg11(num_classes=4, in_channels=2, timesteps=2, width_scale=0.1, rng=RNG)
        inputs = rng.random((2, 2, 2, 16, 16)).astype(np.float32)
        assert model.run_timesteps(inputs)[0].shape == (2, 4)


class TestConvertToTT:
    @pytest.mark.parametrize("variant,cls", [("stt", STTConv2d), ("ptt", PTTConv2d), ("htt", HTTConv2d)])
    def test_variant_replacement(self, variant, cls):
        model = spiking_resnet18(num_classes=4, timesteps=4, width_scale=0.07, rng=RNG)
        replaced = convert_to_tt(model, variant=variant, rank=4, timesteps=4)
        assert len(replaced) == 16
        tt_layers = [m for m in model.modules() if isinstance(m, cls)]
        assert len(tt_layers) == 16

    def test_conversion_reduces_parameters_at_full_width(self):
        dense = spiking_resnet18(num_classes=10, width_scale=1.0)
        dense_params = count_parameters(dense)
        convert_to_tt(dense, variant="ptt", rank=list(np.array([24, 27, 25, 29, 37, 45, 43, 41,
                                                                65, 74, 70, 63, 104, 153, 186, 145])))
        tt_params = count_parameters(dense)
        assert dense_params / tt_params > 5.0

    def test_rank_list_policy(self):
        model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07, rng=RNG)
        convert_to_tt(model, variant="ptt", rank=[2] * 16)
        for layer in model.modules():
            if isinstance(layer, PTTConv2d):
                assert layer.ranks == (2, 2, 2)

    def test_callable_rank_policy(self):
        model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07, rng=RNG)
        convert_to_tt(model, variant="ptt", rank=lambda index, conv: 2 + (index % 2))
        ranks = {layer.ranks[0] for layer in model.modules() if isinstance(layer, PTTConv2d)}
        assert ranks == {2, 3}

    def test_vbmf_rank_policy_runs(self):
        model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07, rng=RNG)
        convert_to_tt(model, variant="ptt", rank="vbmf")
        assert count_tt_layers(model) == 16

    def test_converted_model_still_runs(self, rng):
        model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07, rng=RNG)
        convert_to_tt(model, variant="htt", rank=3, timesteps=2, schedule="FH")
        inputs = rng.random((2, 2, 3, 12, 12)).astype(np.float32)
        outputs = model.run_timesteps(inputs)
        assert outputs[0].shape == (2, 4)

    def test_invalid_variant(self):
        model = spiking_resnet18(width_scale=0.07)
        with pytest.raises(ValueError):
            convert_to_tt(model, variant="qtt")

    def test_decomposable_convolutions_fallback(self):
        """Models without decomposable_layer_names still expose their 3x3 convs."""
        from repro.nn.layers import Conv2d
        from repro.nn.module import Module

        class Plain(Module):
            def __init__(self):
                super().__init__()
                self.a = Conv2d(3, 8, 3)
                self.b = Conv2d(8, 8, 1)

            def forward(self, x):
                return self.b(self.a(x))

        found = decomposable_convolutions(Plain())
        assert [name for name, _ in found] == ["a"]


class TestLayerSpecs:
    def test_spec_counts_match_models(self):
        specs = resnet18_layer_specs()
        decomposable = [s for s in specs if s.decomposable]
        assert len(decomposable) == 16
        specs34 = resnet34_layer_specs()
        assert len([s for s in specs34 if s.decomposable]) == 32

    def test_spec_params_match_instantiated_model(self):
        """The analytical spec total must match the real model's conv/fc parameters."""
        model = spiking_resnet18(num_classes=10, width_scale=1.0)
        specs = resnet18_layer_specs(num_classes=10)
        spec_params = sum(s.params for s in specs)
        model_params = count_parameters(model)
        # The model additionally has batch-norm affine parameters, which the
        # specs deliberately exclude (they are not decomposed or compressed).
        bn_params = model_params - spec_params
        assert 0 < bn_params < 0.02 * model_params

    def test_spatial_bookkeeping(self):
        specs = resnet18_layer_specs(input_hw=(32, 32))
        final_conv = [s for s in specs if s.kind == "conv"][-1]
        assert final_conv.output_hw == (4, 4)

    def test_vgg_specs(self):
        specs = vgg_layer_specs(VGG9_CONFIG, num_classes=10)
        assert specs[0].decomposable is False            # stem
        assert specs[-1].kind == "linear"

    def test_model_layer_specs_dispatch(self):
        assert model_layer_specs("resnet18")
        assert model_layer_specs("vgg11")
        with pytest.raises(KeyError):
            model_layer_specs("transformer")
