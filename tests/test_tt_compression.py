"""Tests for the analytical parameter / FLOP accounting, including the paper's headline ratios."""

import numpy as np
import pytest

from repro.metrics.flops import compression_report_from_specs, dense_model_macs, model_flops_table, tt_model_macs
from repro.models.specs import resnet18_layer_specs, resnet34_layer_specs
from repro.tt.compression import (
    CompressionReport,
    dense_conv_macs,
    dense_conv_params,
    tt_conv_macs,
    tt_conv_params,
    tt_half_path_macs,
)
from repro.tt.layers import PTTConv2d
from repro.tt.ranks import PAPER_RANKS_RESNET18, PAPER_RANKS_RESNET34


class TestLayerFormulas:
    def test_dense_params(self):
        assert dense_conv_params(64, 128, (3, 3)) == 64 * 128 * 9
        assert dense_conv_params(64, 128, (3, 3), bias=True) == 64 * 128 * 9 + 128

    def test_tt_params_matches_real_layer(self):
        layer = PTTConv2d(32, 64, 3, rank=8)
        assert tt_conv_params(32, 64, (3, 3), layer.ranks) == layer.num_parameters()

    def test_dense_macs(self):
        assert dense_conv_macs(3, 16, (3, 3), (32, 32)) == 16 * 3 * 9 * 1024

    def test_tt_macs_stride_modes_agree_for_stride_one(self):
        args = (64, 64, (3, 3), (8, 8, 8), (16, 16), (16, 16))
        assert tt_conv_macs(*args, stride_mode="first") == tt_conv_macs(*args, stride_mode="last")

    def test_tt_macs_stride_modes_differ_for_downsampling(self):
        first = tt_conv_macs(64, 128, (3, 3), (8, 8, 8), (16, 16), (8, 8), stride_mode="first")
        last = tt_conv_macs(64, 128, (3, 3), (8, 8, 8), (16, 16), (8, 8), stride_mode="last")
        assert first < last

    def test_half_path_cheaper_than_full(self):
        full = tt_conv_macs(64, 64, (3, 3), (16, 16, 16), (8, 8), (8, 8))
        half = tt_half_path_macs(64, 64, (16, 16, 16), (8, 8), (8, 8))
        assert half < full

    def test_invalid_stride_mode(self):
        with pytest.raises(ValueError):
            tt_conv_macs(4, 4, (3, 3), (2, 2, 2), (4, 4), (4, 4), stride_mode="center")


class TestCompressionReport:
    def test_report_accumulates(self):
        report = CompressionReport()
        report.add_layer("a", 100, 10, 1000, 100)
        report.add_shared_layer("b", 50, 500)
        assert report.dense_params == 150 and report.tt_params == 60
        assert report.param_compression_ratio == pytest.approx(2.5)
        assert len(report.per_layer) == 2
        summary = report.summary()
        assert summary["param_ratio"] == pytest.approx(2.5)


class TestPaperScaleNumbers:
    """The compression ratios reported in Table II, reproduced analytically."""

    def test_resnet18_cifar_baseline_params_and_flops(self):
        table = model_flops_table(resnet18_layer_specs(num_classes=10), PAPER_RANKS_RESNET18,
                                  timesteps=4, half_timesteps_for_htt=2)
        # Paper: 11.20 M parameters and 2.221 G ops for the ResNet-18 baseline.
        assert table["baseline"]["params_M"] == pytest.approx(11.20, rel=0.02)
        assert table["baseline"]["flops_G"] == pytest.approx(2.221, rel=0.02)

    def test_resnet18_cifar_tt_ratios(self):
        table = model_flops_table(resnet18_layer_specs(num_classes=10), PAPER_RANKS_RESNET18,
                                  timesteps=4, half_timesteps_for_htt=2)
        # Paper: 6.13x parameter and 5.97x FLOP reduction for STT/PTT on CIFAR-10.
        assert table["ptt"]["param_ratio"] == pytest.approx(6.13, rel=0.15)
        assert table["ptt"]["flops_G"] == pytest.approx(0.372, rel=0.05)
        assert table["ptt"]["flops_ratio"] == pytest.approx(5.97, rel=0.05)
        # HTT reduces FLOPs further (paper: 0.282 G, 7.88x).
        assert table["htt"]["flops_G"] < table["ptt"]["flops_G"]
        assert table["htt"]["flops_ratio"] == pytest.approx(7.88, rel=0.1)

    def test_resnet34_ncaltech_ratios(self):
        table = model_flops_table(resnet34_layer_specs(num_classes=101), PAPER_RANKS_RESNET34,
                                  timesteps=6, half_timesteps_for_htt=2)
        # Paper: 21.31 M / 15.65 G baseline; 7.98x params, 9.25x FLOPs; HTT 10.75x.
        assert table["baseline"]["params_M"] == pytest.approx(21.31, rel=0.02)
        assert table["baseline"]["flops_G"] == pytest.approx(15.65, rel=0.02)
        assert table["ptt"]["param_ratio"] == pytest.approx(7.98, rel=0.05)
        assert table["ptt"]["flops_ratio"] == pytest.approx(9.25, rel=0.05)
        assert table["htt"]["flops_ratio"] == pytest.approx(10.75, rel=0.05)

    def test_stt_and_ptt_have_identical_costs(self):
        table = model_flops_table(resnet18_layer_specs(), PAPER_RANKS_RESNET18, timesteps=4)
        assert table["stt"] == table["ptt"]


class TestModelMacsHelpers:
    def test_dense_model_macs_scales_with_timesteps(self):
        specs = resnet18_layer_specs()
        assert dense_model_macs(specs, 8) == 2 * dense_model_macs(specs, 4)

    def test_tt_model_macs_decreases_with_half_timesteps(self):
        specs = resnet18_layer_specs()
        full = tt_model_macs(specs, PAPER_RANKS_RESNET18, timesteps=4, half_timesteps=0)
        half = tt_model_macs(specs, PAPER_RANKS_RESNET18, timesteps=4, half_timesteps=2)
        assert half < full

    def test_tt_model_macs_validates_half_range(self):
        with pytest.raises(ValueError):
            tt_model_macs(resnet18_layer_specs(), 8, timesteps=4, half_timesteps=5)

    def test_rank_list_too_short_raises(self):
        with pytest.raises(IndexError):
            tt_model_macs(resnet18_layer_specs(), [8, 8], timesteps=4)
