"""Tests for SGD / Adam and learning-rate schedulers."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, CosineAnnealingLR, LambdaLR, StepLR


def quadratic_loss(param: Parameter) -> Tensor:
    """Simple convex objective ||w - 3||^2."""
    diff = param - Tensor(np.full_like(param.data, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=0.0)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(w).backward()
            opt.step()
        np.testing.assert_allclose(w.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.zeros(1, dtype=np.float32))
        w_momentum = Parameter(np.zeros(1, dtype=np.float32))
        opt_plain = SGD([w_plain], lr=0.01, momentum=0.0, weight_decay=0.0)
        opt_momentum = SGD([w_momentum], lr=0.01, momentum=0.9, weight_decay=0.0)
        for _ in range(20):
            for w, opt in ((w_plain, opt_plain), (w_momentum, opt_momentum)):
                opt.zero_grad()
                quadratic_loss(w).backward()
                opt.step()
        assert abs(w_momentum.data[0] - 3.0) < abs(w_plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.full(3, 5.0, dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()
        w.grad = np.zeros_like(w.data)
        opt.step()
        assert np.all(w.data < 5.0)

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.ones(2, dtype=np.float32))
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad -> no change, no crash
        np.testing.assert_array_equal(w.data, np.ones(2))

    def test_requires_trainable_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1.0)

    def test_state_dict_round_trip(self):
        w = Parameter(np.zeros(2, dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.9)
        opt.zero_grad()
        quadratic_loss(w).backward()
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([Parameter(np.zeros(2, dtype=np.float32))], lr=0.5)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        assert opt2.momentum == 0.9


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        opt = Adam([w], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            quadratic_loss(w).backward()
            opt.step()
        np.testing.assert_allclose(w.data, np.full(4, 3.0), atol=1e-2)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)

    def test_state_dict_round_trip_continues_identically(self):
        """Resumed Adam must replay the exact trajectory (moments AND step)."""
        def advance(opt, w, steps):
            trace = []
            for _ in range(steps):
                opt.zero_grad()
                quadratic_loss(w).backward()
                opt.step()
                trace.append(w.data.copy())
            return trace

        w = Parameter(np.zeros(3, dtype=np.float32))
        opt = Adam([w], lr=0.05, weight_decay=0.01)
        advance(opt, w, 5)
        saved = opt.state_dict()
        snapshot = w.data.copy()
        reference = advance(opt, w, 5)

        w2 = Parameter(snapshot.copy())
        opt2 = Adam([w2], lr=0.9)  # wrong hyper-params, fixed by the load
        opt2.load_state_dict(saved)
        assert opt2.lr == 0.05 and opt2._step == 5
        resumed = advance(opt2, w2, 5)
        for a, b in zip(reference, resumed):
            np.testing.assert_array_equal(a, b)

    def test_state_dict_copies_are_independent(self):
        w = Parameter(np.zeros(2, dtype=np.float32))
        opt = Adam([w], lr=0.05)
        opt.zero_grad()
        quadratic_loss(w).backward()
        opt.step()
        state = opt.state_dict()
        opt.step()
        # The snapshot must not alias the live moment buffers.
        assert not np.array_equal(state["m"][0], opt._m[0])

    def test_load_rejects_mismatched_buffers(self):
        w = Parameter(np.zeros(2, dtype=np.float32))
        opt = Adam([w], lr=0.05)
        state = opt.state_dict()
        state["m"] = []
        with pytest.raises(ValueError):
            Adam([w], lr=0.05).load_state_dict(state)


class TestSGDResume:
    def test_resumed_sgd_trajectory_is_bitwise(self):
        def advance(opt, w, steps):
            trace = []
            for _ in range(steps):
                opt.zero_grad()
                quadratic_loss(w).backward()
                opt.step()
                trace.append(w.data.copy())
            return trace

        w = Parameter(np.zeros(3, dtype=np.float32))
        opt = SGD([w], lr=0.01, momentum=0.9, weight_decay=1e-4)
        advance(opt, w, 4)
        saved = opt.state_dict()
        snapshot = w.data.copy()
        reference = advance(opt, w, 4)

        w2 = Parameter(snapshot.copy())
        opt2 = SGD([w2], lr=0.5)
        opt2.load_state_dict(saved)
        resumed = advance(opt2, w2, 4)
        for a, b in zip(reference, resumed):
            np.testing.assert_array_equal(a, b)

    def test_velocity_load_casts_to_param_dtype(self):
        w = Parameter(np.zeros(2, dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.9)
        opt.zero_grad()
        quadratic_loss(w).backward()
        opt.step()
        state = opt.state_dict()
        state["velocity"] = [v.astype(np.float64) for v in state["velocity"]]
        opt2 = SGD([Parameter(np.zeros(2, dtype=np.float32))], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2._velocity[0].dtype == np.float32


class TestSchedulers:
    def test_cosine_annealing_endpoints(self):
        opt = SGD([Parameter(np.ones(1))], lr=0.1)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 0.1
        assert lrs[-1] == pytest.approx(0.0, abs=1e-9)
        # Monotone decreasing over the horizon.
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_half_way(self):
        opt = SGD([Parameter(np.ones(1))], lr=0.2)
        sched = CosineAnnealingLR(opt, t_max=100)
        for _ in range(50):
            sched.step()
        assert opt.lr == pytest.approx(0.1, rel=1e-6)

    def test_step_lr(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        values = [sched.step() for _ in range(4)]
        assert values == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_lambda_lr(self):
        opt = SGD([Parameter(np.ones(1))], lr=2.0)
        sched = LambdaLR(opt, lambda epoch: 1.0 / (epoch + 1))
        sched.step()
        assert opt.lr == pytest.approx(1.0)

    def test_invalid_horizon(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)


class TestSchedulerWarmupAndRestore:
    """Edge cases added with the search subsystem: warm-up boundary behaviour
    and mid-schedule state restore (``state_dict`` / ``load_state_dict``)."""

    def _sched(self, lr=0.1, t_max=10, warmup=3, start=0.1):
        opt = SGD([Parameter(np.ones(1))], lr=lr)
        return opt, CosineAnnealingLR(opt, t_max=t_max, warmup_epochs=warmup,
                                      warmup_start_factor=start)

    def test_constructing_with_warmup_applies_the_starting_lr(self):
        # Trainers step the scheduler only after each epoch, so epoch 0 must
        # already run at the ramp's starting LR, not the full base LR.
        opt, sched = self._sched(lr=0.1, t_max=10, warmup=4, start=0.1)
        assert opt.lr == pytest.approx(0.01)
        # Without warm-up the constructor leaves the optimiser untouched.
        opt2 = SGD([Parameter(np.ones(1))], lr=0.1)
        CosineAnnealingLR(opt2, t_max=10)
        assert opt2.lr == 0.1

    def test_warmup_ramps_linearly_to_base_lr(self):
        opt, sched = self._sched(lr=0.1, t_max=10, warmup=4, start=0.0)
        lrs = [sched.step() for _ in range(4)]
        # Linear ramp reaching the base LR exactly at the boundary epoch.
        assert lrs[:3] == pytest.approx([0.025, 0.05, 0.075])
        assert lrs[3] == pytest.approx(0.1)

    def test_warmup_boundary_is_exactly_base_lr(self):
        opt, sched = self._sched(lr=0.2, t_max=8, warmup=3, start=0.5)
        for _ in range(2):
            assert sched.step() < 0.2
        assert sched.step() == pytest.approx(0.2)   # boundary epoch
        assert sched.step() < 0.2                   # cosine decay has begun

    def test_cosine_after_warmup_reaches_eta_min_at_t_max(self):
        opt, sched = self._sched(lr=0.1, t_max=10, warmup=3)
        lrs = [sched.step() for _ in range(12)]
        assert lrs[9] == pytest.approx(0.0, abs=1e-12)
        # Clamped beyond the horizon.
        assert lrs[10] == lrs[11] == lrs[9]
        # Monotone decrease after the boundary.
        post = lrs[3:10]
        assert all(a >= b for a, b in zip(post, post[1:]))

    def test_no_warmup_matches_previous_behaviour(self):
        opt_a = SGD([Parameter(np.ones(1))], lr=0.1)
        plain = CosineAnnealingLR(opt_a, t_max=10)
        opt_b = SGD([Parameter(np.ones(1))], lr=0.1)
        warmless = CosineAnnealingLR(opt_b, t_max=10, warmup_epochs=0)
        for _ in range(10):
            assert plain.step() == pytest.approx(warmless.step())

    def test_invalid_warmup_settings(self):
        opt = SGD([Parameter(np.ones(1))], lr=0.1)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=5, warmup_epochs=5)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=5, warmup_epochs=-1)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=5, warmup_epochs=2, warmup_start_factor=1.5)

    def test_last_epoch_restore_reproduces_the_lr_sequence(self):
        opt, sched = self._sched(lr=0.1, t_max=10, warmup=3)
        for _ in range(5):
            sched.step()
        saved = sched.state_dict()
        remaining_reference = [sched.step() for _ in range(5)]

        # Fresh optimiser + scheduler restored from the snapshot.
        opt2 = SGD([Parameter(np.ones(1))], lr=0.1)
        resumed = CosineAnnealingLR(opt2, t_max=10, warmup_epochs=3)
        resumed.load_state_dict(saved)
        assert resumed.last_epoch == 5
        remaining = [resumed.step() for _ in range(5)]
        assert remaining == pytest.approx(remaining_reference)

    def test_restore_applies_the_scheduled_lr(self):
        opt, sched = self._sched(lr=0.1, t_max=10, warmup=3)
        for _ in range(6):
            sched.step()
        expected_lr = opt.lr
        opt2 = SGD([Parameter(np.ones(1))], lr=0.1)
        resumed = CosineAnnealingLR(opt2, t_max=10, warmup_epochs=3)
        resumed.load_state_dict(sched.state_dict())
        assert opt2.lr == pytest.approx(expected_lr)

    def test_state_dict_carries_shape_hyper_parameters(self):
        # A checkpointed schedule must survive a restoring trainer whose
        # config would build a different scheduler (changed horizon/warm-up).
        opt, sched = self._sched(lr=0.1, t_max=10, warmup=3, start=0.2)
        for _ in range(4):
            sched.step()
        saved = sched.state_dict()
        reference = [sched.step() for _ in range(6)]

        opt2 = SGD([Parameter(np.ones(1))], lr=0.1)
        resumed = CosineAnnealingLR(opt2, t_max=50)  # wrong shape, fixed by load
        resumed.load_state_dict(saved)
        assert resumed.t_max == 10 and resumed.warmup_epochs == 3
        assert resumed.warmup_start_factor == pytest.approx(0.2)
        assert [resumed.step() for _ in range(6)] == pytest.approx(reference)

    def test_state_dict_roundtrip_for_step_lr(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step(); sched.step(); sched.step()
        opt2 = SGD([Parameter(np.ones(1))], lr=1.0)
        resumed = StepLR(opt2, step_size=2, gamma=0.1)
        resumed.load_state_dict(sched.state_dict())
        assert opt2.lr == pytest.approx(opt.lr)
        assert resumed.step() == pytest.approx(sched.step())
