"""Tests for SGD / Adam and learning-rate schedulers."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, CosineAnnealingLR, LambdaLR, StepLR


def quadratic_loss(param: Parameter) -> Tensor:
    """Simple convex objective ||w - 3||^2."""
    diff = param - Tensor(np.full_like(param.data, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=0.0)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(w).backward()
            opt.step()
        np.testing.assert_allclose(w.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.zeros(1, dtype=np.float32))
        w_momentum = Parameter(np.zeros(1, dtype=np.float32))
        opt_plain = SGD([w_plain], lr=0.01, momentum=0.0, weight_decay=0.0)
        opt_momentum = SGD([w_momentum], lr=0.01, momentum=0.9, weight_decay=0.0)
        for _ in range(20):
            for w, opt in ((w_plain, opt_plain), (w_momentum, opt_momentum)):
                opt.zero_grad()
                quadratic_loss(w).backward()
                opt.step()
        assert abs(w_momentum.data[0] - 3.0) < abs(w_plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.full(3, 5.0, dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()
        w.grad = np.zeros_like(w.data)
        opt.step()
        assert np.all(w.data < 5.0)

    def test_skips_parameters_without_grad(self):
        w = Parameter(np.ones(2, dtype=np.float32))
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad -> no change, no crash
        np.testing.assert_array_equal(w.data, np.ones(2))

    def test_requires_trainable_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1.0)

    def test_state_dict_round_trip(self):
        w = Parameter(np.zeros(2, dtype=np.float32))
        opt = SGD([w], lr=0.1, momentum=0.9)
        opt.zero_grad()
        quadratic_loss(w).backward()
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([Parameter(np.zeros(2, dtype=np.float32))], lr=0.5)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        assert opt2.momentum == 0.9


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        opt = Adam([w], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            quadratic_loss(w).backward()
            opt.step()
        np.testing.assert_allclose(w.data, np.full(4, 3.0), atol=1e-2)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)


class TestSchedulers:
    def test_cosine_annealing_endpoints(self):
        opt = SGD([Parameter(np.ones(1))], lr=0.1)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 0.1
        assert lrs[-1] == pytest.approx(0.0, abs=1e-9)
        # Monotone decreasing over the horizon.
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_half_way(self):
        opt = SGD([Parameter(np.ones(1))], lr=0.2)
        sched = CosineAnnealingLR(opt, t_max=100)
        for _ in range(50):
            sched.step()
        assert opt.lr == pytest.approx(0.1, rel=1e-6)

    def test_step_lr(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        values = [sched.step() for _ in range(4)]
        assert values == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_lambda_lr(self):
        opt = SGD([Parameter(np.ones(1))], lr=2.0)
        sched = LambdaLR(opt, lambda epoch: 1.0 / (epoch + 1))
        sched.step()
        assert opt.lr == pytest.approx(1.0)

    def test_invalid_horizon(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)
