"""Shared fixtures and helpers for the TT-SNN reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for every test."""
    return np.random.default_rng(12345)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference numerical gradient of a scalar-valued ``fn``.

    ``fn`` receives a plain ndarray and must return a Python float.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray, atol: float = 1e-2,
                      rtol: float = 5e-2) -> None:
    """Compare analytic and numeric gradients with tolerances suited to float32."""
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


@pytest.fixture
def small_image_batch(rng) -> np.ndarray:
    """A tiny (N, C, H, W) float batch."""
    return rng.standard_normal((2, 3, 8, 8)).astype(np.float32)


@pytest.fixture
def tiny_resnet():
    """A very small spiking ResNet-18 for integration tests."""
    from repro.models.resnet import spiking_resnet18

    return spiking_resnet18(num_classes=4, in_channels=3, timesteps=2, width_scale=0.07,
                            rng=np.random.default_rng(0))


@pytest.fixture
def tiny_static_dataset():
    """A tiny synthetic static-image dataset."""
    from repro.data.synthetic import make_static_image_dataset

    return make_static_image_dataset(num_samples=16, num_classes=4, channels=3,
                                     height=12, width=12, seed=7)


@pytest.fixture
def tiny_event_dataset():
    """A tiny synthetic event dataset."""
    from repro.data.synthetic import make_event_dataset

    return make_event_dataset(num_samples=12, num_classes=4, timesteps=3, channels=2,
                              height=12, width=12, seed=7)
