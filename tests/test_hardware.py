"""Tests for the accelerator energy models and the Fig. 4 relative results."""

import numpy as np
import pytest

from repro.hardware.accelerator import EnergyBreakdown, ExistingAcceleratorModel
from repro.hardware.config import AcceleratorConfig, EnergyTable, TABLE_I_CONFIG, existing_accelerator_config
from repro.hardware.multicluster import MultiClusterAcceleratorModel
from repro.hardware.simulator import simulate_methods, simulate_training_energy
from repro.hardware.workload import build_layer_workloads, tt_sublayer_workloads
from repro.models.specs import resnet18_layer_specs, resnet34_layer_specs
from repro.tt.ranks import PAPER_RANKS_RESNET18, PAPER_RANKS_RESNET34


SPECS18 = resnet18_layer_specs(num_classes=10)


class TestConfig:
    def test_table_i_values(self):
        cfg = TABLE_I_CONFIG
        assert cfg.technology_nm == 28
        assert cfg.frequency_mhz == 400
        assert cfg.num_clusters == 4
        assert cfg.pes_per_cluster == 32
        assert cfg.scratchpad_bytes_per_pe == 32
        assert cfg.total_global_buffer_kb == 272
        assert cfg.accumulator_bits == 16
        assert cfg.multiplier_bits == 8

    def test_existing_config_is_single_engine(self):
        assert existing_accelerator_config().num_clusters == 1

    def test_validation(self):
        bad = AcceleratorConfig(num_clusters=0)
        with pytest.raises(ValueError):
            bad.validate()

    def test_energy_table_ratios_sane(self):
        e = EnergyTable()
        assert e.ac_pj < e.mac_pj              # accumulate cheaper than MAC
        assert e.sram_read_pj_per_byte < e.dram_pj_per_byte / 10   # DRAM >> SRAM


class TestWorkloads:
    def test_tt_expansion_has_four_sublayers(self):
        spec = [s for s in SPECS18 if s.decomposable][0]
        subs = tt_sublayer_workloads(spec, rank=24, parallel=True)
        assert len(subs) == 4
        assert subs[1].parallel_group == "branch" and subs[2].parallel_group == "branch"
        assert subs[0].parallel_group is None and subs[3].parallel_group is None
        assert subs[1].skippable_on_half and subs[2].skippable_on_half

    def test_stt_expansion_not_parallel(self):
        spec = [s for s in SPECS18 if s.decomposable][0]
        subs = tt_sublayer_workloads(spec, rank=24, parallel=False)
        assert all(s.parallel_group is None for s in subs)

    def test_baseline_workloads_single_sublayer(self):
        workloads = build_layer_workloads(SPECS18, "baseline", ranks=8)
        assert all(len(w.sublayers) == 1 for w in workloads)

    def test_tt_macs_smaller_than_baseline(self):
        base = build_layer_workloads(SPECS18, "baseline", ranks=PAPER_RANKS_RESNET18)
        tt = build_layer_workloads(SPECS18, "ptt", ranks=PAPER_RANKS_RESNET18)
        assert sum(w.total_macs for w in tt) < sum(w.total_macs for w in base)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            build_layer_workloads(SPECS18, "qtt", ranks=8)


class TestEnergyBreakdown:
    def test_accumulation(self):
        a = EnergyBreakdown(compute_pj=1, sram_pj=2, dram_pj=3, static_pj=4, cycles=5, leakage_cycles=5)
        b = EnergyBreakdown(compute_pj=1, cycles=1, leakage_cycles=1)
        a.add(b)
        assert a.total_pj == pytest.approx(11)
        assert a.cycles == 6
        assert "total_pj" in a.as_dict()


class TestAcceleratorModels:
    def test_energy_components_positive(self):
        report = simulate_training_energy(SPECS18, "ptt", ExistingAcceleratorModel(),
                                          ranks=PAPER_RANKS_RESNET18, timesteps=4)
        b = report.breakdown
        assert b.compute_pj > 0 and b.sram_pj > 0 and b.dram_pj > 0 and b.static_pj > 0
        assert report.total_nj == pytest.approx(b.total_pj / 1e3)

    def test_energy_scales_with_timesteps(self):
        short = simulate_training_energy(SPECS18, "baseline", ExistingAcceleratorModel(),
                                         ranks=8, timesteps=2)
        long = simulate_training_energy(SPECS18, "baseline", ExistingAcceleratorModel(),
                                        ranks=8, timesteps=4)
        assert long.total_pj > short.total_pj * 1.5

    def test_half_timesteps_validated(self):
        with pytest.raises(ValueError):
            simulate_training_energy(SPECS18, "htt", ExistingAcceleratorModel(),
                                     ranks=8, timesteps=4, half_timesteps=9)


class TestFig4aRelations:
    """Fig. 4(a): relative energies on the existing single-engine accelerator."""

    @pytest.fixture(scope="class")
    def existing_reports(self):
        return simulate_methods(SPECS18, ExistingAcceleratorModel(), PAPER_RANKS_RESNET18,
                                timesteps=4, half_timesteps=2)

    def test_stt_cuts_most_of_the_baseline_energy(self, existing_reports):
        base = existing_reports["baseline"].total_pj
        stt = existing_reports["stt"].total_pj
        saving = 1 - stt / base
        # Paper reports 68.1%; the analytical model lands in the same band.
        assert 0.55 < saving < 0.9

    def test_ptt_costs_more_than_stt_on_existing_accelerator(self, existing_reports):
        stt = existing_reports["stt"].total_pj
        ptt = existing_reports["ptt"].total_pj
        overhead = ptt / stt - 1
        # Paper reports +10.9% (DRAM round trip of the parallel branch).
        assert 0.02 < overhead < 0.25

    def test_htt_close_to_stt_on_existing_accelerator(self, existing_reports):
        stt = existing_reports["stt"].total_pj
        htt = existing_reports["htt"].total_pj
        assert abs(htt / stt - 1) < 0.15


class TestFig4bRelations:
    """Fig. 4(b): savings of PTT / HTT over STT on the proposed multi-cluster design."""

    @pytest.fixture(scope="class")
    def proposed_reports(self):
        return simulate_methods(SPECS18, MultiClusterAcceleratorModel(), PAPER_RANKS_RESNET18,
                                timesteps=4, methods=("stt", "ptt", "htt"), half_timesteps=2)

    def test_ptt_saves_energy_on_proposed_accelerator(self, proposed_reports):
        stt = proposed_reports["stt"].total_pj
        ptt = proposed_reports["ptt"].total_pj
        saving = 1 - ptt / stt
        # Paper: 28.3%.
        assert 0.15 < saving < 0.45

    def test_htt_saves_more_than_ptt(self, proposed_reports):
        stt = proposed_reports["stt"].total_pj
        ptt = proposed_reports["ptt"].total_pj
        htt = proposed_reports["htt"].total_pj
        assert htt < ptt < stt
        saving = 1 - htt / stt
        # Paper: 43.5%.
        assert 0.30 < saving < 0.60

    def test_resnet34_shows_same_ordering(self):
        specs = resnet34_layer_specs(num_classes=101)
        reports = simulate_methods(specs, MultiClusterAcceleratorModel(), PAPER_RANKS_RESNET34,
                                   timesteps=6, methods=("stt", "ptt", "htt"), half_timesteps=2)
        assert reports["htt"].total_pj < reports["ptt"].total_pj < reports["stt"].total_pj


class TestCrossAcceleratorComparison:
    def test_proposed_accelerator_reverses_the_ptt_penalty(self):
        """The point of Sec. IV: on the existing accelerator PTT costs *more* than STT,
        on the proposed multi-cluster accelerator it costs *less*."""
        existing = simulate_methods(SPECS18, ExistingAcceleratorModel(), PAPER_RANKS_RESNET18,
                                    timesteps=4, methods=("stt", "ptt"))
        proposed = simulate_methods(SPECS18, MultiClusterAcceleratorModel(), PAPER_RANKS_RESNET18,
                                    timesteps=4, methods=("stt", "ptt"))
        assert existing["ptt"].total_pj > existing["stt"].total_pj
        assert proposed["ptt"].total_pj < proposed["stt"].total_pj
