"""Single-vs-fused step-mode equivalence: logits, losses and gradients.

The fused execution engine (fold timesteps into the batch for stateless
layers, one fused BPTT node for the LIF recurrence, channels-last layout
internally) must be a pure optimisation: for every architecture, TT variant
and timestep count it has to produce the same logits, the same loss and the
same parameter gradients as the single-step reference loop, to float32
rounding (asserted at ``1e-5``).
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.models.builder import convert_to_tt
from repro.models.resnet import spiking_resnet18
from repro.models.vgg import spiking_vgg9
from repro.nn.layers import Conv2d
from repro.nn.module import SeqToBatch, fold_time, sequence_forward, unfold_time
from repro.snn.encoding import encode_batch
from repro.snn.loss import mean_output_cross_entropy
from repro.snn.neurons import LIFNeuron, lif_sequence


TOL = dict(atol=1e-5, rtol=1e-5)


def _run_both_modes(model, inputs, labels):
    """Run one training forward+backward in each mode from identical state."""
    state = model.state_dict()
    results = {}
    for mode in ("single", "fused"):
        model.load_state_dict(state)
        model.zero_grad()
        outputs = model.run_timesteps(inputs, step_mode=mode)
        loss = mean_output_cross_entropy(outputs, labels)
        loss.backward()
        results[mode] = {
            "logits": np.stack([o.data for o in outputs]),
            "loss": float(loss.data),
            "grads": {name: None if p.grad is None else p.grad.copy()
                      for name, p in model.named_parameters()},
            "buffers": {name: b.data.copy() for name, b in model.named_buffers()},
        }
    return results["single"], results["fused"]


def _assert_equivalent(single, fused):
    np.testing.assert_allclose(single["logits"], fused["logits"], **TOL)
    assert single["loss"] == pytest.approx(fused["loss"], abs=1e-5)
    for name, grad in single["grads"].items():
        other = fused["grads"][name]
        if grad is None or other is None:
            # A parameter untouched by the schedule (e.g. HTT "HH") must be
            # untouched in both modes.
            assert grad is None and other is None, name
            continue
        np.testing.assert_allclose(grad, other, err_msg=name, **TOL)
    for name, buf in single["buffers"].items():
        np.testing.assert_allclose(buf, fused["buffers"][name], err_msg=name, **TOL)


def _make_batch(timesteps, batch=3, channels=3, size=12, classes=4, seed=7):
    rng = np.random.default_rng(seed)
    images = rng.standard_normal((batch, channels, size, size)).astype(np.float32)
    labels = rng.integers(0, classes, size=batch)
    return encode_batch(images, timesteps), labels


class TestDenseModels:
    @pytest.mark.parametrize("timesteps", [1, 2, 4])
    def test_vgg9(self, timesteps):
        model = spiking_vgg9(num_classes=4, timesteps=timesteps, width_scale=0.1,
                             rng=np.random.default_rng(0))
        inputs, labels = _make_batch(timesteps)
        _assert_equivalent(*_run_both_modes(model, inputs, labels))

    @pytest.mark.parametrize("timesteps", [1, 2, 4])
    def test_resnet18(self, timesteps):
        model = spiking_resnet18(num_classes=4, timesteps=timesteps, width_scale=0.07,
                                 rng=np.random.default_rng(0))
        inputs, labels = _make_batch(timesteps)
        _assert_equivalent(*_run_both_modes(model, inputs, labels))

    def test_eval_mode_uses_running_stats(self):
        model = spiking_vgg9(num_classes=4, timesteps=2, width_scale=0.1,
                             rng=np.random.default_rng(0))
        inputs, labels = _make_batch(2)
        model.run_timesteps(inputs)            # populate running stats
        model.eval()
        _assert_equivalent(*_run_both_modes(model, inputs, labels))


class TestTTModels:
    @pytest.mark.parametrize("variant", ["stt", "ptt", "htt"])
    @pytest.mark.parametrize("timesteps", [1, 2, 4])
    def test_vgg9_tt(self, variant, timesteps):
        model = spiking_vgg9(num_classes=4, timesteps=timesteps, width_scale=0.1,
                             rng=np.random.default_rng(0))
        convert_to_tt(model, variant=variant, rank=4, timesteps=timesteps)
        inputs, labels = _make_batch(timesteps)
        _assert_equivalent(*_run_both_modes(model, inputs, labels))

    @pytest.mark.parametrize("variant", ["ptt", "htt"])
    @pytest.mark.parametrize("timesteps", [2, 4])
    def test_resnet18_tt(self, variant, timesteps):
        model = spiking_resnet18(num_classes=4, timesteps=timesteps, width_scale=0.07,
                                 rng=np.random.default_rng(0))
        convert_to_tt(model, variant=variant, rank=4, timesteps=timesteps)
        inputs, labels = _make_batch(timesteps)
        _assert_equivalent(*_run_both_modes(model, inputs, labels))

    def test_htt_all_half_schedule(self):
        """Degenerate HTT schedules (all half / all full) keep mode equivalence."""
        for schedule in ("HH", "FF"):
            model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07,
                                     rng=np.random.default_rng(0))
            convert_to_tt(model, variant="htt", rank=4, timesteps=2, schedule=schedule)
            inputs, labels = _make_batch(2)
            _assert_equivalent(*_run_both_modes(model, inputs, labels))


class TestNormVariants:
    @pytest.mark.parametrize("norm", ["bn", "tdbn", "tebn"])
    def test_resnet_norms(self, norm):
        model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07, norm=norm,
                                 rng=np.random.default_rng(0))
        inputs, labels = _make_batch(2)
        _assert_equivalent(*_run_both_modes(model, inputs, labels))


class TestStepModeAPI:
    def test_invalid_mode_rejected(self):
        model = spiking_vgg9(num_classes=4, timesteps=2, width_scale=0.1)
        with pytest.raises(ValueError):
            model.step_mode = "turbo"
        with pytest.raises(ValueError):
            model.run_timesteps(np.zeros((2, 1, 3, 8, 8), dtype=np.float32),
                                step_mode="turbo")

    def test_set_step_mode_chains(self):
        model = spiking_vgg9(num_classes=4, timesteps=2, width_scale=0.1)
        assert model.set_step_mode("single") is model
        assert model.step_mode == "single"

    def test_default_mode_is_fused(self):
        assert spiking_vgg9(num_classes=4, timesteps=2, width_scale=0.1).step_mode == "fused"
        assert spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07).step_mode == "fused"

    def test_predict_mode_override(self, rng):
        model = spiking_vgg9(num_classes=4, timesteps=2, width_scale=0.1,
                             rng=np.random.default_rng(0))
        model.eval()
        inputs = rng.random((2, 3, 3, 12, 12)).astype(np.float32)
        np.testing.assert_array_equal(model.predict(inputs, step_mode="single"),
                                      model.predict(inputs, step_mode="fused"))


class TestFusedPrimitives:
    def test_fold_unfold_roundtrip(self, rng):
        x = Tensor(rng.random((3, 2, 4, 5, 5)).astype(np.float32), requires_grad=True)
        folded = fold_time(x)
        assert folded.shape == (6, 4, 5, 5)
        restored = unfold_time(folded, 3)
        np.testing.assert_array_equal(restored.data, x.data)
        restored.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(x.data))

    def test_unfold_rejects_indivisible(self, rng):
        with pytest.raises(ValueError):
            unfold_time(Tensor(rng.random((5, 2)).astype(np.float32)), 3)

    def test_seq_to_batch_matches_per_step_loop(self, rng):
        conv = Conv2d(3, 5, 3, padding=1, rng=np.random.default_rng(0))
        adapter = SeqToBatch(conv)
        x = Tensor(rng.random((4, 2, 3, 8, 8)).astype(np.float32))
        fused = adapter(x)
        looped = Tensor.stack([conv(x[t]) for t in range(4)], axis=0)
        np.testing.assert_allclose(fused.data, looped.data, **TOL)
        assert list(dict(adapter.named_parameters())) == ["inner.weight"]

    def test_sequence_forward_falls_back_to_loop(self, rng):
        class Doubler:
            def __call__(self, x):
                return x * 2.0
        x = Tensor(rng.random((3, 2, 4)).astype(np.float32))
        out = sequence_forward(Doubler(), x)
        np.testing.assert_allclose(out.data, x.data * 2.0)

    def test_lif_sequence_matches_stepwise(self, rng):
        currents = rng.standard_normal((5, 2, 7)).astype(np.float32)
        neuron = LIFNeuron(tau_m=0.25, v_threshold=0.5)
        stepwise = []
        for t in range(5):
            stepwise.append(neuron(Tensor(currents[t])).data)
        fused = lif_sequence(Tensor(currents), tau_m=0.25, v_threshold=0.5)
        np.testing.assert_array_equal(fused.data, np.stack(stepwise))

    def test_lif_forward_sequence_bptt_gradient(self, rng):
        """Fused BPTT gradient equals the per-step tape gradient."""
        currents = rng.standard_normal((4, 3, 6)).astype(np.float32)
        for hard_reset in (True, False):
            for detach_reset in (True, False):
                x_single = Tensor(currents.copy(), requires_grad=True)
                neuron = LIFNeuron(hard_reset=hard_reset, detach_reset=detach_reset)
                out = Tensor.stack([neuron(x_single[t]) for t in range(4)], axis=0)
                (out * Tensor(np.arange(out.size, dtype=np.float32).reshape(out.shape))) \
                    .sum().backward()

                x_fused = Tensor(currents.copy(), requires_grad=True)
                neuron.reset_state()
                out_f = neuron.forward_sequence(x_fused)
                (out_f * Tensor(np.arange(out_f.size, dtype=np.float32).reshape(out_f.shape))) \
                    .sum().backward()
                np.testing.assert_allclose(x_single.grad, x_fused.grad, **TOL)

    def test_fused_sets_final_membrane(self, rng):
        currents = rng.standard_normal((3, 2, 4)).astype(np.float32)
        single = LIFNeuron()
        for t in range(3):
            single(Tensor(currents[t]))
        fused = LIFNeuron()
        fused.forward_sequence(Tensor(currents))
        np.testing.assert_allclose(single.membrane_potential.data,
                                   fused.membrane_potential.data, **TOL)


class TestTrainerIntegration:
    def test_trainer_fused_matches_single(self, tiny_static_dataset):
        from repro.data.datasets import DataLoader
        from repro.training.config import TrainingConfig
        from repro.training.trainer import BPTTTrainer

        data, labels = next(iter(DataLoader(tiny_static_dataset, batch_size=8, shuffle=False)))
        stats = {}
        for mode in ("single", "fused"):
            model = spiking_resnet18(num_classes=4, timesteps=2, width_scale=0.07,
                                     rng=np.random.default_rng(0))
            config = TrainingConfig(timesteps=2, epochs=1, batch_size=8,
                                    learning_rate=0.05, step_mode=mode)
            trainer = BPTTTrainer(model, config)
            stats[mode] = trainer.train_step(data, labels)
        assert stats["single"]["loss"] == pytest.approx(stats["fused"]["loss"], abs=1e-5)
        assert stats["single"]["accuracy"] == stats["fused"]["accuracy"]

    def test_config_rejects_bad_step_mode(self):
        from repro.training.config import TrainingConfig
        with pytest.raises(ValueError):
            TrainingConfig(step_mode="warp")
