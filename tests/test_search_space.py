"""Tests for the (format, rank) search space and the rank-grid helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.vgg import spiking_vgg9
from repro.search import FORMATS, LayerChoice, LayerSearchSpace, SearchSpace
from repro.tt.decomposition import max_tt_ranks
from repro.tt.ranks import rank_grid_for_layer


def _tiny_model(seed: int = 0):
    return spiking_vgg9(num_classes=4, in_channels=3, timesteps=2,
                        width_scale=0.1, rng=np.random.default_rng(seed))


class TestLayerChoice:
    def test_dense_rank_normalised_to_zero(self):
        assert LayerChoice("dense", 7).rank == 0
        assert LayerChoice("DENSE", 0).format == "dense"

    def test_tt_formats_need_positive_rank(self):
        with pytest.raises(ValueError):
            LayerChoice("ptt", 0)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            LayerChoice("cp", 4)

    def test_hashable_and_encodable(self):
        a = LayerChoice("stt", 8)
        b = LayerChoice("stt", 8)
        assert a == b and hash(a) == hash(b)
        assert a.encode() == ("stt", 8)


class TestLayerSearchSpace:
    def _layer(self, **overrides):
        kwargs = dict(name="conv", in_channels=16, out_channels=16,
                      kernel_size=(3, 3), stride=(1, 1),
                      formats=("dense", "stt", "ptt", "htt"), ranks=(4, 8, 16))
        kwargs.update(overrides)
        return LayerSearchSpace(**kwargs)

    def test_choice_enumeration(self):
        layer = self._layer()
        choices = layer.choices()
        # 1 dense + 3 TT formats x 3 ranks.
        assert len(choices) == 10 == layer.num_choices()
        assert LayerChoice("dense", 0) in choices
        assert LayerChoice("htt", 16) in choices

    def test_max_rank_is_grid_top(self):
        assert self._layer().max_rank == 16

    def test_contains(self):
        layer = self._layer()
        assert layer.contains(LayerChoice("ptt", 8))
        assert not layer.contains(LayerChoice("ptt", 6))
        assert layer.contains(LayerChoice("dense", 0))

    def test_tt_formats_without_ranks_rejected(self):
        with pytest.raises(ValueError):
            self._layer(ranks=())

    def test_ranks_sorted_and_deduped(self):
        layer = self._layer(ranks=(8, 4, 8, 16))
        assert layer.ranks == (4, 8, 16)


class TestSearchSpaceForModel:
    def test_covers_every_decomposable_layer(self):
        model = _tiny_model()
        space = SearchSpace.for_model(model)
        assert len(space) == len(model.decomposable_layer_names())
        # Grid candidates are admissible for each layer's actual channels.
        for layer in space.layers:
            limit = min(max_tt_ranks(layer.in_channels, layer.out_channels,
                                     layer.kernel_size))
            assert layer.max_rank <= limit
            assert all(1 <= r <= limit for r in layer.ranks)

    def test_max_rank_cap(self):
        space = SearchSpace.for_model(_tiny_model(), max_rank=4)
        assert all(layer.max_rank <= 4 for layer in space.layers)

    def test_configuration_count(self):
        space = SearchSpace.for_model(_tiny_model())
        expected = 1
        for layer in space.layers:
            expected *= layer.num_choices()
        assert space.num_configurations() == expected

    def test_random_config_valid_and_seeded(self):
        space = SearchSpace.for_model(_tiny_model())
        a = space.random_config(np.random.default_rng(7))
        b = space.random_config(np.random.default_rng(7))
        assert a == b
        space.validate_config(a)

    def test_uniform_config(self):
        space = SearchSpace.for_model(_tiny_model())
        config = space.uniform_config("ptt")
        assert all(c.format == "ptt" for c in config)
        assert all(c.rank == layer.max_rank for c, layer in zip(config, space.layers))
        dense = space.uniform_config("dense")
        assert all(c == LayerChoice("dense", 0) for c in dense)

    def test_mutate_stays_valid_and_changes_something(self):
        space = SearchSpace.for_model(_tiny_model())
        rng = np.random.default_rng(3)
        config = space.random_config(rng)
        mutated = space.mutate(config, rng, prob=1.0)
        space.validate_config(mutated)
        assert mutated != config
        # Probability 0 keeps the config unchanged.
        assert space.mutate(config, rng, prob=0.0) == config

    def test_crossover_inherits_per_layer(self):
        space = SearchSpace.for_model(_tiny_model())
        rng = np.random.default_rng(4)
        first = space.uniform_config("stt")
        second = space.uniform_config("ptt")
        child = space.crossover(first, second, rng)
        space.validate_config(child)
        assert all(c in (a, b) for c, a, b in zip(child, first, second))

    def test_validate_rejects_foreign_choice(self):
        space = SearchSpace.for_model(_tiny_model())
        config = list(space.uniform_config("ptt"))
        config[0] = LayerChoice("ptt", 999)
        with pytest.raises(ValueError):
            space.validate_config(config)

    def test_encode_roundtrip_hashable(self):
        space = SearchSpace.for_model(_tiny_model())
        config = space.uniform_config("htt", rank_fraction=0.5)
        key = space.encode(config)
        assert isinstance(hash(key), int)
        assert key == tuple(c.encode() for c in config)


class TestRankGrid:
    def test_grid_is_ascending_admissible_and_snapped(self):
        grid = rank_grid_for_layer(64, 64, 3, snap=4)
        limit = min(max_tt_ranks(64, 64, (3, 3)))
        assert grid == sorted(set(grid))
        assert all(1 <= r <= limit for r in grid)
        # Divisor-friendly: everything above the floor is a multiple of snap.
        assert all(r % 4 == 0 for r in grid if r >= 4)
        assert grid[-1] == limit  # the full fraction reaches the limit

    def test_tiny_layer_falls_back_to_valid_ranks(self):
        grid = rank_grid_for_layer(4, 4, 3)
        assert grid[0] >= 1 and grid[-1] <= min(max_tt_ranks(4, 4, (3, 3)))

    def test_max_rank_cap_and_min_rank(self):
        grid = rank_grid_for_layer(128, 128, 3, max_rank=32, min_rank=8)
        assert all(8 <= r <= 32 for r in grid)

    def test_impossible_min_rank_raises(self):
        with pytest.raises(ValueError):
            rank_grid_for_layer(4, 4, 3, min_rank=100)
