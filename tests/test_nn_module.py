"""Tests for Module / Parameter registration, traversal and state dicts."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.layers import Conv2d, Linear, Sequential, BatchNorm2d


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)
        self.scale = Parameter(np.ones(1))
        self.register_buffer("counter", Tensor(np.zeros(1)))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        model = Toy()
        names = dict(model.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names
        assert len(list(model.parameters())) == 5

    def test_buffers_registered(self):
        model = Toy()
        assert "counter" in dict(model.named_buffers())

    def test_reassigning_attribute_updates_registry(self):
        model = Toy()
        model.fc1 = Linear(4, 6)
        assert model.fc1.out_features == 6
        assert dict(model.named_parameters())["fc1.weight"].shape == (6, 4)

    def test_num_parameters(self):
        model = Toy()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert model.num_parameters() == expected

    def test_modules_iteration(self):
        model = Toy()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = Sequential(Linear(3, 3), BatchNorm2d(3))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_round_trip(self):
        model = Toy()
        state = model.state_dict()
        model2 = Toy()
        model2.load_state_dict(state)
        for (name_a, p_a), (name_b, p_b) in zip(model.named_parameters(), model2.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_strict_mismatch_raises(self):
        model = Toy()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Toy()
        state = model.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state, strict=False)


class TestZeroGrad:
    def test_zero_grad_clears(self):
        model = Toy()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestModuleList:
    def test_registers_children(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml.parameters())) == 4
        ml.append(Linear(2, 3))
        assert len(ml) == 3
        assert ml[2].out_features == 3

    def test_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([])(None)


class TestSequential:
    def test_forward_order(self):
        seq = Sequential(Linear(3, 5), Linear(5, 2))
        out = seq(Tensor(np.ones((1, 3), dtype=np.float32)))
        assert out.shape == (1, 2)
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)
