"""Tests for the EVBMF analytic rank estimator (Nakajima et al., 2013)."""

import numpy as np
import pytest

from repro.tt.ranks import (
    PAPER_RANKS_RESNET18,
    PAPER_RANKS_RESNET34,
    estimate_tt_rank_for_weight,
    rank_for_layer,
    scale_ranks,
)
from repro.tt.vbmf import estimate_rank, evbmf


def low_rank_matrix(rows, cols, rank, noise, rng):
    return (rng.standard_normal((rows, rank)) @ rng.standard_normal((rank, cols)) * 2.0
            + noise * rng.standard_normal((rows, cols)))


class TestEVBMF:
    @pytest.mark.parametrize("true_rank,noise", [(3, 0.1), (5, 0.2), (10, 0.05)])
    def test_recovers_planted_rank(self, rng, true_rank, noise):
        matrix = low_rank_matrix(60, 90, true_rank, noise, rng)
        assert evbmf(matrix).rank == true_rank

    def test_transposed_input_gives_same_rank(self, rng):
        matrix = low_rank_matrix(40, 80, 4, 0.1, rng)
        assert evbmf(matrix).rank == evbmf(matrix.T).rank

    def test_pure_noise_gives_low_rank(self, rng):
        noise = rng.standard_normal((50, 60))
        assert evbmf(noise).rank <= 3

    def test_known_sigma2(self, rng):
        matrix = low_rank_matrix(50, 70, 4, 0.1, rng)
        result = evbmf(matrix, sigma2=0.01)
        assert result.rank == 4
        assert result.sigma2 == pytest.approx(0.01)

    def test_reconstruction_shape(self, rng):
        matrix = low_rank_matrix(30, 45, 3, 0.1, rng)
        result = evbmf(matrix)
        approx = result.u @ np.diag(result.s) @ result.v.T
        assert approx.shape == matrix.shape

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            evbmf(np.zeros((3, 3, 3)))

    def test_estimate_rank_bounds(self, rng):
        matrix = rng.standard_normal((20, 20)) * 0.01
        assert estimate_rank(matrix, min_rank=2) >= 2
        full = low_rank_matrix(20, 20, 15, 0.01, rng)
        assert estimate_rank(full, max_rank=5) <= 5


class TestRankTables:
    def test_paper_rank_counts(self):
        # 16 decomposable convolutions in ResNet-18, 32 in ResNet-34.
        assert len(PAPER_RANKS_RESNET18) == 16
        assert len(PAPER_RANKS_RESNET34) == 32

    def test_rank_for_layer_lookup(self):
        assert rank_for_layer(0, "resnet18") == 24
        assert rank_for_layer(15, "resnet18") == 145
        assert rank_for_layer(31, "resnet34") == 108

    def test_rank_for_layer_scaling(self):
        assert rank_for_layer(0, "resnet18", scale=0.5) == 12
        assert rank_for_layer(0, "resnet18", scale=0.001) == 1     # floored at 1

    def test_rank_for_layer_errors(self):
        with pytest.raises(KeyError):
            rank_for_layer(0, "alexnet")
        with pytest.raises(IndexError):
            rank_for_layer(99, "resnet18")

    def test_scale_ranks(self):
        assert scale_ranks([10, 20], 0.5) == [5, 10]
        with pytest.raises(ValueError):
            scale_ranks([10], 0.0)

    def test_estimate_tt_rank_for_weight_low_rank_kernel(self, rng):
        """A conv kernel built from few outer products gets a small estimated rank."""
        basis = rng.standard_normal((3, 16, 3, 3))
        coeffs = rng.standard_normal((32, 3))
        weight = np.einsum("or,rikl->oikl", coeffs, basis) + 0.01 * rng.standard_normal((32, 16, 3, 3))
        rank = estimate_tt_rank_for_weight(weight)
        assert 1 <= rank <= 6

    def test_estimate_tt_rank_validates_shape(self):
        with pytest.raises(ValueError):
            estimate_tt_rank_for_weight(np.zeros((4, 4)))
