"""Tests for the functional API: activations, losses, pooling, dropout, padding."""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor

from conftest import assert_grad_close, numerical_gradient


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
        probs = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        probs = F.softmax(logits, axis=1)
        assert np.all(np.isfinite(probs.data))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.standard_normal((3, 5)).astype(np.float32))
        np.testing.assert_allclose(F.log_softmax(logits, axis=1).data,
                                   np.log(F.softmax(logits, axis=1).data), rtol=1e-4, atol=1e-5)

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.data < 1e-3

    def test_cross_entropy_uniform_equals_log_classes(self):
        logits = Tensor(np.zeros((5, 4), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(5, dtype=np.int64))
        assert loss.data == pytest.approx(np.log(4), rel=1e-4)

    def test_cross_entropy_gradient_matches_numeric(self, rng):
        logits_val = rng.standard_normal((3, 4)).astype(np.float32)
        labels = np.array([0, 2, 1])
        logits = Tensor(logits_val.copy(), requires_grad=True)
        F.cross_entropy(logits, labels).backward()

        def loss_fn(arr):
            shifted = arr - arr.max(axis=1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return float(-log_probs[np.arange(3), labels].mean())

        numeric = numerical_gradient(loss_fn, logits_val.astype(np.float64))
        assert_grad_close(logits.grad, numeric)

    def test_mse_loss(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(a, np.array([0.0, 0.0]))
        assert loss.data == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])

    def test_one_hot(self):
        oh = F.one_hot(np.array([1, 0, 2]), 3)
        np.testing.assert_array_equal(oh, [[0, 1, 0], [1, 0, 0], [0, 0, 1]])


class TestLinear:
    def test_linear_matches_manual(self, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        w = rng.standard_normal((4, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-5)


class TestPooling:
    def test_avg_pool_matches_manual(self, rng):
        x = rng.standard_normal((1, 1, 4, 4)).astype(np.float32)
        out = F.avg_pool2d(Tensor(x), 2)
        expected = x.reshape(1, 1, 2, 2, 2, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_max_pool_matches_manual(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        out = F.max_pool2d(Tensor(x), 2)
        expected = x.reshape(1, 2, 2, 2, 2, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_avg_pool_gradient_is_uniform(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_max_pool_gradient_goes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == pytest.approx(4.0)
        assert x.grad[0, 0, 3, 3] == pytest.approx(1.0)

    def test_adaptive_avg_pool_to_one(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = F.adaptive_avg_pool2d(Tensor(x), 1)
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3), keepdims=True), rtol=1e-5)

    def test_adaptive_avg_pool_requires_divisible(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 7, 7)).astype(np.float32))
        with pytest.raises(ValueError):
            F.adaptive_avg_pool2d(x, 2)


class TestDropoutAndPad:
    def test_dropout_identity_in_eval(self, rng):
        x = Tensor(rng.standard_normal((5, 5)).astype(np.float32))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_scales_in_train(self, rng):
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        # Inverted dropout keeps the expectation ~1.
        assert out.data.mean() == pytest.approx(1.0, abs=0.15)
        assert set(np.unique(out.data)).issubset({0.0, 2.0})

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.5, training=True)

    def test_pad2d_shapes_and_gradient(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
        out = F.pad2d(x, (1, 2))
        assert out.shape == (1, 1, 4, 6)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))
