"""Integration tests for the experiment drivers (micro-scale versions of each table/figure)."""

import numpy as np
import pytest

from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.table2 import DATASET_SETTINGS, Table2Row, format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import PAPER_SCHEDULES, format_table4, run_table4


MICRO = dict(width_scale=0.07, num_samples=16, image_size=12, epochs=1, batch_size=8,
             num_classes=4, tt_rank=3)


class TestTable2:
    def test_settings_cover_paper_datasets(self):
        assert set(DATASET_SETTINGS) == {"cifar10", "cifar100", "ncaltech101"}
        assert DATASET_SETTINGS["ncaltech101"]["timesteps"] == 6

    def test_structural_columns_without_training(self):
        rows = run_table2("cifar10", measure_accuracy=False, **MICRO)
        by_method = {r.method: r for r in rows}
        assert by_method["baseline"].params_M == pytest.approx(11.16, rel=0.02)
        assert by_method["ptt"].param_ratio == pytest.approx(6.78, rel=0.05)
        assert by_method["ptt"].flops_ratio == pytest.approx(5.97, rel=0.05)
        assert by_method["htt"].flops_G < by_method["ptt"].flops_G

    def test_training_times_measured(self):
        """Per-batch training times are measured for every method.

        At micro scale the CPU timing differences between methods are inside
        the noise floor, so the paper's time *ordering* is exercised by the
        Table II / Fig. 5 benchmarks (which run larger workloads) rather than
        asserted here.
        """
        rows = run_table2("cifar10", measure_accuracy=False, **MICRO)
        assert all(r.training_time_s > 0 for r in rows)
        by_method = {r.method: r for r in rows}
        assert set(by_method) == {"baseline", "stt", "ptt", "htt"}

    def test_full_run_with_accuracy(self):
        rows = run_table2("cifar10", measure_accuracy=True, **MICRO)
        assert all(np.isfinite(r.accuracy) for r in rows)
        text = format_table2(rows)
        assert "baseline" in text and "FLOPs" in text

    def test_event_dataset_variant(self):
        rows = run_table2("ncaltech101", measure_accuracy=False, methods=("baseline", "ptt"),
                          **MICRO)
        assert {r.method for r in rows} == {"baseline", "ptt"}
        assert rows[0].params_M == pytest.approx(21.31, rel=0.02)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            run_table2("imagenet")


class TestTable3:
    def test_single_row_runs(self):
        rows = run_table3(methods=("tdBN",), width_scale=0.15, num_samples=12, image_size=12,
                          timesteps=2, num_classes=3, epochs=1, batch_size=6, tt_rank=3,
                          measure_accuracy=False)
        assert len(rows) == 1
        assert rows[0].base_time_s > 0 and rows[0].ptt_time_s > 0
        assert "tdBN" in format_table3(rows)

    def test_event_row_runs(self):
        rows = run_table3(methods=("TET",), width_scale=0.15, num_samples=9, image_size=12,
                          timesteps=2, num_classes=3, epochs=1, batch_size=3, tt_rank=3,
                          measure_accuracy=False)
        assert rows[0].dataset == "dvsgesture"

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            run_table3(methods=("FancyBN",))


class TestTable4:
    def test_paper_schedules(self):
        assert PAPER_SCHEDULES == ["FFHH", "HHFF", "HFHF", "FHFH"]

    def test_two_schedules_run(self):
        rows = run_table4(schedules=("FF", "HH"), timesteps=2, width_scale=0.07, num_samples=12,
                          image_size=12, num_classes=3, epochs=1, batch_size=6, tt_rank=3)
        assert len(rows) == 2
        assert all(0.0 <= r.accuracy <= 1.0 for r in rows)
        assert "Accuracy" in format_table4(rows)

    def test_schedule_length_validation(self):
        with pytest.raises(ValueError):
            run_table4(schedules=("FFHH",), timesteps=2)


class TestFig4:
    def test_full_paper_scale_run(self):
        results = run_fig4()
        assert {r.architecture for r in results} == {"resnet18", "resnet34"}
        for r in results:
            assert r.stt_saving_vs_baseline_pct > 50
            assert r.ptt_overhead_vs_stt_pct > 0
            assert r.ptt_saving_on_proposed_pct > 15
            assert r.htt_saving_on_proposed_pct > r.ptt_saving_on_proposed_pct
        text = format_fig4(results)
        assert "Fig. 4(a)" in text and "Fig. 4(b)" in text

    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            run_fig4(architectures=("resnet50",))


class TestFig5:
    def test_sweep_runs(self):
        points = run_fig5(timestep_values=(2, 3), methods=("ptt", "htt"), width_scale=0.07,
                          num_samples=12, image_size=12, num_classes=3, epochs=1, batch_size=6,
                          tt_rank=3, measure_accuracy=False)
        assert len(points) == 4
        assert all(p.training_time_s > 0 for p in points)
        assert {(p.method, p.timesteps) for p in points} == {("ptt", 2), ("ptt", 3),
                                                             ("htt", 2), ("htt", 3)}
        assert "Fig. 5(b)" in format_fig5(points)
