"""Unit tests for the core autograd Tensor."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled, as_tensor

from conftest import assert_grad_close, numerical_gradient


class TestTensorBasics:
    def test_construction_casts_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32
        assert t.shape == (3,)

    def test_requires_grad_flag(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert t.requires_grad
        assert t.grad is None

    def test_detach_breaks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d._prev == ()

    def test_zeros_ones_like_constructors(self):
        t = Tensor.zeros((2, 3))
        assert t.data.sum() == 0
        o = Tensor.ones((2, 3))
        assert o.data.sum() == 6
        z = Tensor.zeros_like(o)
        assert z.shape == (2, 3)

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestArithmetic:
    def test_add_backward(self, rng):
        a = Tensor(rng.standard_normal(5).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(5).astype(np.float32), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(5))
        np.testing.assert_allclose(b.grad, np.ones(5))

    def test_mul_backward(self, rng):
        a = Tensor(rng.standard_normal(5).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(5).astype(np.float32), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data, rtol=1e-6)
        np.testing.assert_allclose(b.grad, a.data, rtol=1e-6)

    def test_sub_and_neg(self, rng):
        a = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, -np.ones(4))

    def test_div_backward(self, rng):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data, rtol=1e-6)
        np.testing.assert_allclose(b.grad, -a.data / b.data ** 2, rtol=1e-6)

    def test_pow_backward(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * a.data ** 2, rtol=1e-5)

    def test_scalar_broadcasting(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a * 2.5 + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.5))

    def test_broadcast_gradient_is_reduced(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((1, 4)), requires_grad=True)
        (a + b).sum().backward()
        assert b.grad.shape == (1, 4)
        np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))

    def test_matmul_backward_matches_numeric(self, rng):
        a_val = rng.standard_normal((3, 4)).astype(np.float32)
        b_val = rng.standard_normal((4, 2)).astype(np.float32)
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        (a @ b).sum().backward()
        numeric = numerical_gradient(lambda x: float((x @ b_val).sum()), a_val.astype(np.float64))
        assert_grad_close(a.grad, numeric)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_mean_backward(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 1.0 / 6.0))

    def test_var_matches_numpy(self, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        a = Tensor(x)
        np.testing.assert_allclose(a.var(axis=0).data, x.var(axis=0), rtol=1e-5)

    def test_max_backward_distributes_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_round_trip(self, rng):
        a = Tensor(rng.standard_normal((2, 6)).astype(np.float32), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)

    def test_transpose_backward(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        (a.transpose(2, 0, 1) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 2.0))

    def test_getitem_backward(self):
        a = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        a[2:4].sum().backward()
        np.testing.assert_allclose(a.grad, [0, 0, 1, 1, 0, 0])

    def test_stack_and_concatenate(self, rng):
        a = Tensor(rng.standard_normal(3).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(3).astype(np.float32), requires_grad=True)
        Tensor.stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        a.grad = None
        b.grad = None
        Tensor.concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_squeeze_unsqueeze(self):
        a = Tensor(np.ones((1, 3, 1)), requires_grad=True)
        out = a.squeeze()
        assert out.shape == (3,)
        out2 = out.unsqueeze(0)
        assert out2.shape == (1, 3)
        out2.sum().backward()
        assert a.grad.shape == (1, 3, 1)


class TestElementwiseMath:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid"])
    def test_unary_gradients_match_numeric(self, op, rng):
        x_val = (rng.random(6).astype(np.float32) + 0.5)
        x = Tensor(x_val.copy(), requires_grad=True)
        getattr(x, op)().sum().backward()

        def scalar_fn(arr):
            return float(getattr(np, op if op != "sigmoid" else "tanh")(arr).sum()) \
                if op != "sigmoid" else float((1 / (1 + np.exp(-arr))).sum())

        numeric = numerical_gradient(scalar_fn, x_val.astype(np.float64))
        assert_grad_close(x.grad, numeric)

    def test_relu_gradient_mask(self):
        x = Tensor(np.array([-1.0, 2.0, -3.0, 4.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0, 1])

    def test_clip_gradient_mask(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])

    def test_abs_gradient_sign(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1, 1])


class TestGraphMechanics:
    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_gradient_accumulates_across_backwards_of_shared_leaf(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        z = x * 3.0
        (y.sum() + z.sum()).backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x          # x^2
        z = y + x          # x^2 + x -> dz/dx = 2x + 1 = 5
        z.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor(np.ones(3), requires_grad=True)
            assert not x.requires_grad
            y = x * 2
            assert y._prev == ()
        assert is_grad_enabled()

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)
